//! Energy-use extension (paper §VI).
//!
//! The conclusion sketches the next step: "the energy use of a system is
//! heavily dependent on the time that the system spends executing
//! applications", so a model that predicts co-located execution time
//! extends naturally to predicting energy. This module implements that
//! extension: a DVFS-aware socket power model composed with a trained
//! [`crate::Predictor`].

use crate::lab::Lab;
use crate::predictor::Predictor;
use crate::scenario::Scenario;
use crate::Result;
use coloc_machine::MachineSpec;

/// A simple socket power model: static power plus per-core dynamic power
/// scaling as `f·V²` with voltage roughly linear in frequency — the usual
/// first-order CMOS model, giving dynamic power ∝ (f/f_max)³.
#[derive(Clone, Copy, Debug, serde::Serialize, serde::Deserialize)]
pub struct PowerModel {
    /// Socket static/uncore power, watts.
    pub static_w: f64,
    /// Per-active-core dynamic power at the top P-state, watts.
    pub core_dynamic_w: f64,
    /// Exponent on the frequency ratio (3.0 for the f·V² model).
    pub exponent: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        // Ballpark for the Xeon class: ~45 W uncore + ~7 W/core at fmax.
        PowerModel {
            static_w: 45.0,
            core_dynamic_w: 7.0,
            exponent: 3.0,
        }
    }
}

impl PowerModel {
    /// Socket power with `active_cores` busy at P-state `pstate`.
    pub fn socket_power_w(&self, spec: &MachineSpec, pstate: usize, active_cores: usize) -> f64 {
        let f = spec
            .pstates_ghz
            .get(pstate)
            .copied()
            .unwrap_or(spec.pstates_ghz[0]);
        let ratio = f / spec.pstates_ghz[0];
        self.static_w + active_cores as f64 * self.core_dynamic_w * ratio.powf(self.exponent)
    }
}

/// Predicted energy for one scenario.
#[derive(Clone, Copy, Debug, serde::Serialize, serde::Deserialize)]
pub struct EnergyEstimate {
    /// Predicted co-located execution time of the target, seconds.
    pub predicted_time_s: f64,
    /// Socket power during the run, watts.
    pub socket_power_w: f64,
    /// Total socket energy over the target's run, joules.
    pub socket_energy_j: f64,
    /// The target's attributed share (socket energy ÷ occupied cores).
    pub target_energy_j: f64,
}

/// A time predictor composed with a power model.
pub struct EnergyPredictor<'a> {
    predictor: &'a Predictor,
    power: PowerModel,
}

impl<'a> EnergyPredictor<'a> {
    /// Compose a trained time predictor with a power model.
    pub fn new(predictor: &'a Predictor, power: PowerModel) -> EnergyPredictor<'a> {
        EnergyPredictor { predictor, power }
    }

    /// Predict the energy consumed while the target runs under `scenario`.
    pub fn predict(&self, lab: &Lab, scenario: &Scenario) -> Result<EnergyEstimate> {
        let features = lab.featurize(scenario)?;
        let predicted_time_s = self.predictor.predict(&features);
        let cores = scenario.cores_needed();
        let socket_power_w =
            self.power
                .socket_power_w(lab.machine().spec(), scenario.pstate, cores);
        let socket_energy_j = socket_power_w * predicted_time_s;
        Ok(EnergyEstimate {
            predicted_time_s,
            socket_power_w,
            socket_energy_j,
            target_energy_j: socket_energy_j / cores as f64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coloc_machine::presets;

    #[test]
    fn power_drops_with_pstate_and_rises_with_cores() {
        let spec = presets::xeon_e5649();
        let pm = PowerModel::default();
        let p_fast = pm.socket_power_w(&spec, 0, 6);
        let p_slow = pm.socket_power_w(&spec, 5, 6);
        assert!(p_slow < p_fast);
        let p_one = pm.socket_power_w(&spec, 0, 1);
        assert!(p_one < p_fast);
        // Static floor.
        assert!(p_one > pm.static_w);
    }

    #[test]
    fn cubic_scaling() {
        let spec = presets::xeon_e5649();
        let pm = PowerModel {
            static_w: 0.0,
            core_dynamic_w: 10.0,
            exponent: 3.0,
        };
        let ratio = spec.pstates_ghz[5] / spec.pstates_ghz[0];
        let expect = 10.0 * ratio.powi(3);
        assert!((pm.socket_power_w(&spec, 5, 1) - expect).abs() < 1e-9);
    }

    #[test]
    fn energy_estimate_composes_time_and_power() {
        use crate::{FeatureSet, ModelKind, Predictor, TrainingPlan};
        let lab = crate::Lab::new(presets::xeon_e5649(), coloc_workloads::standard(), 7).unwrap();
        let plan = TrainingPlan {
            pstates: vec![0, 3],
            targets: vec!["canneal".into(), "cg".into(), "ep".into()],
            co_runners: vec!["cg".into(), "ep".into()],
            counts: vec![1, 3, 5],
        };
        let samples = lab.collect(&plan).unwrap();
        let p = Predictor::train(ModelKind::Linear, FeatureSet::C, &samples, 0).unwrap();
        let ep = EnergyPredictor::new(&p, PowerModel::default());

        let sc = Scenario::homogeneous("canneal", "cg", 3, 0);
        let est = ep.predict(&lab, &sc).unwrap();
        assert!(est.predicted_time_s > 0.0);
        assert!((est.socket_energy_j - est.socket_power_w * est.predicted_time_s).abs() < 1e-9);
        assert!((est.target_energy_j * 4.0 - est.socket_energy_j).abs() < 1e-9);

        // Racing to idle vs slowing down: at the lowest P-state the run is
        // longer but the power lower; both effects must show up.
        let sc_slow = Scenario::homogeneous("canneal", "cg", 3, 1);
        let est_slow = ep.predict(&lab, &sc_slow).unwrap();
        assert!(est_slow.predicted_time_s > est.predicted_time_s);
        assert!(est_slow.socket_power_w < est.socket_power_w);
    }
}
