//! Interference-aware scheduling on top of the prediction models.
//!
//! The paper's introduction motivates the whole methodology with this use
//! case: "information gained from accurate co-location performance
//! degradation could be integrated into intelligent application
//! scheduling … increasing opportunities for server consolidation to save
//! power while still maintaining quality of service". This module is that
//! integration: given a batch of jobs and a fleet of identical sockets,
//! place jobs to minimize predicted slowdown.
//!
//! Policies are open: [`PlacementPolicy`] is the extension point (the
//! datacenter-scale `coloc-placement` crate builds on the same shape),
//! and the [`Policy`] enum names the two built-in strategies. Scored
//! placements expose MISE-style fairness metrics ([`Placement::unfairness`],
//! [`Placement::qos_violations`]) alongside mean/max slowdown.

use crate::lab::Lab;
use crate::predictor::Predictor;
use crate::scenario::Scenario;
use crate::{ColocError, Result};

/// One socket's assignment.
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SocketAssignment {
    /// Job (application) names placed on this socket.
    pub jobs: Vec<String>,
}

/// A complete placement plus its predicted cost.
#[derive(Clone, Debug)]
pub struct Placement {
    /// Per-socket assignments.
    pub sockets: Vec<SocketAssignment>,
    /// Predicted slowdown of every job under its socket's co-location,
    /// parallel to a depth-first walk of `sockets[i].jobs`.
    pub predicted_slowdowns: Vec<f64>,
}

impl Placement {
    /// Guard for the aggregate metrics: an empty placement has no
    /// slowdowns to aggregate, and `vecops::mean`/`max` on empty slices
    /// would answer `0` / `-inf` — numbers that read like extraordinarily
    /// good placements. Mirror the `nrmse`/`mpe` empty-input contract
    /// with a typed error instead.
    fn slowdowns_or_degenerate(&self) -> Result<&[f64]> {
        if self.predicted_slowdowns.is_empty() {
            return Err(ColocError::DegenerateDataset(
                "placement holds no jobs; slowdown aggregates are undefined".into(),
            ));
        }
        Ok(&self.predicted_slowdowns)
    }

    /// Mean predicted slowdown across jobs.
    /// [`ColocError::DegenerateDataset`] when the placement holds no jobs.
    pub fn mean_slowdown(&self) -> Result<f64> {
        Ok(coloc_linalg::vecops::mean(self.slowdowns_or_degenerate()?))
    }

    /// Worst predicted slowdown (QoS metric).
    /// [`ColocError::DegenerateDataset`] when the placement holds no jobs.
    pub fn max_slowdown(&self) -> Result<f64> {
        Ok(coloc_linalg::vecops::max(self.slowdowns_or_degenerate()?))
    }

    /// Best (smallest) predicted slowdown — the least-degraded job.
    /// [`ColocError::DegenerateDataset`] when the placement holds no jobs.
    pub fn min_slowdown(&self) -> Result<f64> {
        Ok(self
            .slowdowns_or_degenerate()?
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min))
    }

    /// MISE-style unfairness index: maximum slowdown over minimum
    /// slowdown (Subramanian et al.). `1.0` means every job degrades
    /// equally — the equal-share ideal; larger values mean some jobs pay
    /// for others' consolidation.
    pub fn unfairness(&self) -> Result<f64> {
        Ok(self.max_slowdown()? / self.min_slowdown()?)
    }

    /// Number of jobs whose predicted slowdown exceeds `threshold` — the
    /// soft-QoS violation count at a configurable bound.
    pub fn qos_violations(&self, threshold: f64) -> usize {
        self.predicted_slowdowns
            .iter()
            .filter(|&&s| s > threshold)
            .count()
    }

    /// Number of sockets actually used.
    pub fn sockets_used(&self) -> usize {
        self.sockets.iter().filter(|s| !s.jobs.is_empty()).count()
    }
}

/// How to place jobs: the two built-in strategies, as a closed enum for
/// CLI/serde surfaces. [`Policy::implementation`] maps each to its
/// [`PlacementPolicy`]; external crates can implement the trait directly
/// and go through [`Scheduler::place_with`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Fill each socket completely before opening the next (maximum
    /// consolidation, interference-blind).
    PackFirstFit,
    /// Greedy interference-aware: place each job on the socket where the
    /// model predicts the smallest increase in total slowdown, opening a
    /// new socket only when every open socket is full.
    LeastInterference,
}

impl Policy {
    /// The strategy object implementing this policy.
    pub fn implementation(&self) -> &'static dyn PlacementPolicy {
        match self {
            Policy::PackFirstFit => &PackFirstFit,
            Policy::LeastInterference => &LeastInterference,
        }
    }
}

/// A placement strategy: assign jobs to fixed-capacity sockets.
///
/// Implementations see the scheduler (for predicted slowdowns and
/// baseline data) and mutate the socket list in place; the caller has
/// already verified aggregate capacity and sized `sockets`. The
/// contract: every job lands on exactly one socket and no socket exceeds
/// `cores` jobs — the scored [`Placement`] is derived from the result.
pub trait PlacementPolicy: Sync {
    /// Stable identifier (CLI values, reports).
    fn name(&self) -> &'static str;

    /// Place every job in `jobs` onto `sockets`, each holding at most
    /// `cores` jobs.
    fn assign(
        &self,
        sched: &Scheduler<'_>,
        jobs: &[String],
        sockets: &mut [SocketAssignment],
        cores: usize,
    ) -> Result<()>;
}

/// See [`Policy::PackFirstFit`].
pub struct PackFirstFit;

impl PlacementPolicy for PackFirstFit {
    fn name(&self) -> &'static str {
        "pack-first-fit"
    }

    fn assign(
        &self,
        _sched: &Scheduler<'_>,
        jobs: &[String],
        sockets: &mut [SocketAssignment],
        cores: usize,
    ) -> Result<()> {
        for (i, job) in jobs.iter().enumerate() {
            sockets[i / cores].jobs.push(job.clone());
        }
        Ok(())
    }
}

/// See [`Policy::LeastInterference`].
pub struct LeastInterference;

impl PlacementPolicy for LeastInterference {
    fn name(&self) -> &'static str {
        "least-interference"
    }

    fn assign(
        &self,
        sched: &Scheduler<'_>,
        jobs: &[String],
        sockets: &mut [SocketAssignment],
        cores: usize,
    ) -> Result<()> {
        // Jobs in descending memory intensity: place the loudest
        // first so they spread before sockets fill.
        let db = sched.lab.baselines();
        let mut ordered: Vec<String> = jobs.to_vec();
        ordered.sort_by(|a, b| {
            let ma = db.get(a).map_or(0.0, |x| x.memory_intensity);
            let mb = db.get(b).map_or(0.0, |x| x.memory_intensity);
            mb.partial_cmp(&ma).expect("finite MI")
        });
        for job in ordered {
            let mut best: Option<(usize, f64)> = None;
            for (si, s) in sockets.iter().enumerate() {
                if s.jobs.len() >= cores {
                    continue;
                }
                let before = sched.socket_cost(&s.jobs)?;
                let mut with = s.jobs.clone();
                with.push(job.clone());
                let delta = sched.socket_cost(&with)? - before;
                if best.is_none_or(|(_, d)| delta < d) {
                    best = Some((si, delta));
                }
            }
            let (si, _) = best.expect("capacity checked above");
            sockets[si].jobs.push(job.clone());
        }
        Ok(())
    }
}

/// The scheduler: a lab (for featurization) + a trained predictor.
pub struct Scheduler<'a> {
    lab: &'a Lab,
    predictor: &'a Predictor,
    pstate: usize,
}

impl<'a> Scheduler<'a> {
    /// Create a scheduler operating at the given P-state.
    pub fn new(lab: &'a Lab, predictor: &'a Predictor, pstate: usize) -> Scheduler<'a> {
        Scheduler {
            lab,
            predictor,
            pstate,
        }
    }

    /// Predicted slowdown of `target` co-located with `neighbours` on one
    /// socket.
    pub fn predicted_slowdown(&self, target: &str, neighbours: &[String]) -> Result<f64> {
        let mut counts: Vec<(String, usize)> = Vec::new();
        for n in neighbours {
            match counts.iter_mut().find(|(name, _)| name == n) {
                Some((_, c)) => *c += 1,
                None => counts.push((n.clone(), 1)),
            }
        }
        let sc = Scenario {
            target: target.to_string(),
            co_located: counts,
            pstate: self.pstate,
        };
        let features = self.lab.featurize(&sc)?;
        Ok(self.predictor.predict_slowdown(&features))
    }

    /// Total predicted slowdown of all jobs on one socket.
    fn socket_cost(&self, jobs: &[String]) -> Result<f64> {
        let mut total = 0.0;
        for (i, j) in jobs.iter().enumerate() {
            let neighbours: Vec<String> = jobs
                .iter()
                .enumerate()
                .filter(|(k, _)| *k != i)
                .map(|(_, n)| n.clone())
                .collect();
            total += self.predicted_slowdown(j, &neighbours)?;
        }
        Ok(total)
    }

    /// Place `jobs` on up to `num_sockets` sockets of the lab's machine.
    ///
    /// Fails if the jobs cannot fit (`jobs.len() > num_sockets × cores`) or
    /// reference unknown applications.
    pub fn place(&self, jobs: &[String], num_sockets: usize, policy: Policy) -> Result<Placement> {
        self.place_with(jobs, num_sockets, policy.implementation())
    }

    /// Place `jobs` with an arbitrary [`PlacementPolicy`] implementation.
    pub fn place_with(
        &self,
        jobs: &[String],
        num_sockets: usize,
        policy: &dyn PlacementPolicy,
    ) -> Result<Placement> {
        let cores = self.lab.machine().spec().cores;
        if jobs.len() > num_sockets * cores {
            return Err(crate::ModelError::InsufficientData(format!(
                "{} jobs exceed {} sockets × {} cores",
                jobs.len(),
                num_sockets,
                cores
            )));
        }
        let mut sockets = vec![SocketAssignment::default(); num_sockets];
        policy.assign(self, jobs, &mut sockets, cores)?;

        let mut predicted_slowdowns = Vec::with_capacity(jobs.len());
        for s in &sockets {
            for (i, j) in s.jobs.iter().enumerate() {
                let neighbours: Vec<String> = s
                    .jobs
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| *k != i)
                    .map(|(_, n)| n.clone())
                    .collect();
                predicted_slowdowns.push(self.predicted_slowdown(j, &neighbours)?);
            }
        }
        Ok(Placement {
            sockets,
            predicted_slowdowns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FeatureSet, ModelKind, Predictor, TrainingPlan};
    use coloc_machine::presets;
    use std::sync::OnceLock;

    fn shared() -> &'static (Lab, Predictor) {
        static CELL: OnceLock<(Lab, Predictor)> = OnceLock::new();
        CELL.get_or_init(|| {
            let lab = Lab::new(presets::xeon_e5649(), coloc_workloads::standard(), 5).unwrap();
            let plan = TrainingPlan {
                pstates: vec![0],
                targets: vec![
                    "cg".into(),
                    "canneal".into(),
                    "fluidanimate".into(),
                    "ep".into(),
                ],
                co_runners: vec!["cg".into(), "sp".into(), "ep".into()],
                counts: vec![1, 2, 3, 5],
            };
            let samples = lab.collect(&plan).unwrap();
            let p = Predictor::train(ModelKind::NeuralNet, FeatureSet::E, &samples, 1).unwrap();
            (lab, p)
        })
    }

    #[test]
    fn least_interference_beats_packing_on_mixed_jobs() {
        let (lab, p) = shared();
        let sched = Scheduler::new(lab, p, 0);
        // 4 memory hogs + 4 compute jobs, 2 sockets of 6 cores.
        let jobs: Vec<String> = ["cg", "cg", "cg", "cg", "ep", "ep", "ep", "ep"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let packed = sched.place(&jobs, 2, Policy::PackFirstFit).unwrap();
        let smart = sched.place(&jobs, 2, Policy::LeastInterference).unwrap();
        assert!(
            smart.mean_slowdown().unwrap() < packed.mean_slowdown().unwrap(),
            "smart {} vs packed {}",
            smart.mean_slowdown().unwrap(),
            packed.mean_slowdown().unwrap()
        );
        // The smart placement should split the hogs across sockets.
        let hogs_per_socket: Vec<usize> = smart
            .sockets
            .iter()
            .map(|s| s.jobs.iter().filter(|j| *j == "cg").count())
            .collect();
        assert_eq!(hogs_per_socket, vec![2, 2], "{smart:?}");
        // Spreading the hogs is also the fairer outcome: no socket is a
        // sacrificial all-hog pen, so max/min tightens.
        assert!(
            smart.unfairness().unwrap() <= packed.unfairness().unwrap(),
            "unfairness {} vs {}",
            smart.unfairness().unwrap(),
            packed.unfairness().unwrap()
        );
    }

    #[test]
    fn capacity_is_enforced() {
        let (lab, p) = shared();
        let sched = Scheduler::new(lab, p, 0);
        let jobs: Vec<String> = (0..12).map(|_| "ep".to_string()).collect();
        // 12 jobs fit on 2 × 6 cores exactly; one socket is not enough.
        assert!(sched.place(&jobs, 2, Policy::PackFirstFit).is_ok());
        assert!(sched.place(&jobs, 1, Policy::PackFirstFit).is_err());
        let thirteen: Vec<String> = (0..13).map(|_| "ep".to_string()).collect();
        assert!(sched.place(&thirteen, 2, Policy::PackFirstFit).is_err());
    }

    #[test]
    fn solo_job_has_unit_slowdown() {
        let (lab, p) = shared();
        let sched = Scheduler::new(lab, p, 0);
        let sd = sched.predicted_slowdown("canneal", &[]).unwrap();
        assert!((sd - 1.0).abs() < 0.15, "solo slowdown {sd}");
    }

    #[test]
    fn placement_metrics() {
        let (lab, p) = shared();
        let sched = Scheduler::new(lab, p, 0);
        let jobs: Vec<String> = ["cg", "ep"].iter().map(|s| s.to_string()).collect();
        let pl = sched.place(&jobs, 2, Policy::LeastInterference).unwrap();
        assert_eq!(pl.predicted_slowdowns.len(), 2);
        assert!(pl.max_slowdown().unwrap() >= pl.mean_slowdown().unwrap());
        assert!(pl.mean_slowdown().unwrap() >= pl.min_slowdown().unwrap());
        assert!(pl.unfairness().unwrap() >= 1.0);
        assert!(pl.sockets_used() >= 1);
        // QoS violations are monotone in the threshold and exhaustive at
        // the extremes.
        assert_eq!(pl.qos_violations(f64::NEG_INFINITY), 2);
        assert_eq!(pl.qos_violations(f64::INFINITY), 0);
        assert!(pl.qos_violations(1.01) >= pl.qos_violations(1.5));
    }

    #[test]
    fn empty_placement_metrics_are_typed_errors() {
        let empty = Placement {
            sockets: vec![SocketAssignment::default(); 3],
            predicted_slowdowns: vec![],
        };
        for metric in [
            empty.mean_slowdown(),
            empty.max_slowdown(),
            empty.min_slowdown(),
            empty.unfairness(),
        ] {
            match metric {
                Err(ColocError::DegenerateDataset(msg)) => {
                    assert!(msg.contains("no jobs"), "{msg}")
                }
                other => panic!("expected DegenerateDataset, got {other:?}"),
            }
        }
        assert_eq!(empty.qos_violations(1.0), 0);
        assert_eq!(empty.sockets_used(), 0);
        // Placing an empty job list is fine; only the aggregates refuse.
        let (lab, p) = shared();
        let sched = Scheduler::new(lab, p, 0);
        let pl = sched.place(&[], 2, Policy::LeastInterference).unwrap();
        assert!(pl.mean_slowdown().is_err());
        assert_eq!(pl.sockets_used(), 0);
    }

    #[test]
    fn policy_implementations_match_the_enum() {
        assert_eq!(
            Policy::PackFirstFit.implementation().name(),
            "pack-first-fit"
        );
        assert_eq!(
            Policy::LeastInterference.implementation().name(),
            "least-interference"
        );
    }

    #[test]
    fn place_with_accepts_custom_policies() {
        /// Round-robin: a three-line external strategy — the trait is the
        /// extension point the placement crate builds on.
        struct RoundRobin;
        impl PlacementPolicy for RoundRobin {
            fn name(&self) -> &'static str {
                "round-robin"
            }
            fn assign(
                &self,
                _sched: &Scheduler<'_>,
                jobs: &[String],
                sockets: &mut [SocketAssignment],
                _cores: usize,
            ) -> Result<()> {
                for (i, job) in jobs.iter().enumerate() {
                    sockets[i % sockets.len()].jobs.push(job.clone());
                }
                Ok(())
            }
        }
        let (lab, p) = shared();
        let sched = Scheduler::new(lab, p, 0);
        let jobs: Vec<String> = ["cg", "cg", "ep", "ep"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let pl = sched.place_with(&jobs, 2, &RoundRobin).unwrap();
        assert_eq!(pl.sockets[0].jobs, vec!["cg", "ep"]);
        assert_eq!(pl.sockets[1].jobs, vec!["cg", "ep"]);
        assert_eq!(pl.predicted_slowdowns.len(), 4);
    }
}
