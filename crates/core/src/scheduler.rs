//! Interference-aware scheduling on top of the prediction models.
//!
//! The paper's introduction motivates the whole methodology with this use
//! case: "information gained from accurate co-location performance
//! degradation could be integrated into intelligent application
//! scheduling … increasing opportunities for server consolidation to save
//! power while still maintaining quality of service". This module is that
//! integration: given a batch of jobs and a fleet of identical sockets,
//! place jobs to minimize predicted slowdown.

use crate::lab::Lab;
use crate::predictor::Predictor;
use crate::scenario::Scenario;
use crate::Result;

/// One socket's assignment.
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SocketAssignment {
    /// Job (application) names placed on this socket.
    pub jobs: Vec<String>,
}

/// A complete placement plus its predicted cost.
#[derive(Clone, Debug)]
pub struct Placement {
    /// Per-socket assignments.
    pub sockets: Vec<SocketAssignment>,
    /// Predicted slowdown of every job under its socket's co-location,
    /// parallel to a depth-first walk of `sockets[i].jobs`.
    pub predicted_slowdowns: Vec<f64>,
}

impl Placement {
    /// Mean predicted slowdown across jobs.
    pub fn mean_slowdown(&self) -> f64 {
        coloc_linalg::vecops::mean(&self.predicted_slowdowns)
    }

    /// Worst predicted slowdown (QoS metric).
    pub fn max_slowdown(&self) -> f64 {
        coloc_linalg::vecops::max(&self.predicted_slowdowns)
    }

    /// Number of sockets actually used.
    pub fn sockets_used(&self) -> usize {
        self.sockets.iter().filter(|s| !s.jobs.is_empty()).count()
    }
}

/// How to place jobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Fill each socket completely before opening the next (maximum
    /// consolidation, interference-blind).
    PackFirstFit,
    /// Greedy interference-aware: place each job on the socket where the
    /// model predicts the smallest increase in total slowdown, opening a
    /// new socket only when every open socket is full.
    LeastInterference,
}

/// The scheduler: a lab (for featurization) + a trained predictor.
pub struct Scheduler<'a> {
    lab: &'a Lab,
    predictor: &'a Predictor,
    pstate: usize,
}

impl<'a> Scheduler<'a> {
    /// Create a scheduler operating at the given P-state.
    pub fn new(lab: &'a Lab, predictor: &'a Predictor, pstate: usize) -> Scheduler<'a> {
        Scheduler {
            lab,
            predictor,
            pstate,
        }
    }

    /// Predicted slowdown of `target` co-located with `neighbours` on one
    /// socket.
    pub fn predicted_slowdown(&self, target: &str, neighbours: &[String]) -> Result<f64> {
        let mut counts: Vec<(String, usize)> = Vec::new();
        for n in neighbours {
            match counts.iter_mut().find(|(name, _)| name == n) {
                Some((_, c)) => *c += 1,
                None => counts.push((n.clone(), 1)),
            }
        }
        let sc = Scenario {
            target: target.to_string(),
            co_located: counts,
            pstate: self.pstate,
        };
        let features = self.lab.featurize(&sc)?;
        Ok(self.predictor.predict_slowdown(&features))
    }

    /// Total predicted slowdown of all jobs on one socket.
    fn socket_cost(&self, jobs: &[String]) -> Result<f64> {
        let mut total = 0.0;
        for (i, j) in jobs.iter().enumerate() {
            let neighbours: Vec<String> = jobs
                .iter()
                .enumerate()
                .filter(|(k, _)| *k != i)
                .map(|(_, n)| n.clone())
                .collect();
            total += self.predicted_slowdown(j, &neighbours)?;
        }
        Ok(total)
    }

    /// Place `jobs` on up to `num_sockets` sockets of the lab's machine.
    ///
    /// Fails if the jobs cannot fit (`jobs.len() > num_sockets × cores`) or
    /// reference unknown applications.
    pub fn place(&self, jobs: &[String], num_sockets: usize, policy: Policy) -> Result<Placement> {
        let cores = self.lab.machine().spec().cores;
        if jobs.len() > num_sockets * cores {
            return Err(crate::ModelError::InsufficientData(format!(
                "{} jobs exceed {} sockets × {} cores",
                jobs.len(),
                num_sockets,
                cores
            )));
        }
        let mut sockets = vec![SocketAssignment::default(); num_sockets];

        match policy {
            Policy::PackFirstFit => {
                for (i, job) in jobs.iter().enumerate() {
                    sockets[i / cores].jobs.push(job.clone());
                }
            }
            Policy::LeastInterference => {
                // Jobs in descending memory intensity: place the loudest
                // first so they spread before sockets fill.
                let db = self.lab.baselines();
                let mut ordered: Vec<String> = jobs.to_vec();
                ordered.sort_by(|a, b| {
                    let ma = db.get(a).map_or(0.0, |x| x.memory_intensity);
                    let mb = db.get(b).map_or(0.0, |x| x.memory_intensity);
                    mb.partial_cmp(&ma).expect("finite MI")
                });
                for job in ordered {
                    let mut best: Option<(usize, f64)> = None;
                    for (si, s) in sockets.iter().enumerate() {
                        if s.jobs.len() >= cores {
                            continue;
                        }
                        let before = self.socket_cost(&s.jobs)?;
                        let mut with = s.jobs.clone();
                        with.push(job.clone());
                        let delta = self.socket_cost(&with)? - before;
                        if best.is_none_or(|(_, d)| delta < d) {
                            best = Some((si, delta));
                        }
                    }
                    let (si, _) = best.expect("capacity checked above");
                    sockets[si].jobs.push(job.clone());
                }
            }
        }

        let mut predicted_slowdowns = Vec::with_capacity(jobs.len());
        for s in &sockets {
            for (i, j) in s.jobs.iter().enumerate() {
                let neighbours: Vec<String> = s
                    .jobs
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| *k != i)
                    .map(|(_, n)| n.clone())
                    .collect();
                predicted_slowdowns.push(self.predicted_slowdown(j, &neighbours)?);
            }
        }
        Ok(Placement {
            sockets,
            predicted_slowdowns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FeatureSet, ModelKind, Predictor, TrainingPlan};
    use coloc_machine::presets;
    use std::sync::OnceLock;

    fn shared() -> &'static (Lab, Predictor) {
        static CELL: OnceLock<(Lab, Predictor)> = OnceLock::new();
        CELL.get_or_init(|| {
            let lab = Lab::new(presets::xeon_e5649(), coloc_workloads::standard(), 5).unwrap();
            let plan = TrainingPlan {
                pstates: vec![0],
                targets: vec![
                    "cg".into(),
                    "canneal".into(),
                    "fluidanimate".into(),
                    "ep".into(),
                ],
                co_runners: vec!["cg".into(), "sp".into(), "ep".into()],
                counts: vec![1, 2, 3, 5],
            };
            let samples = lab.collect(&plan).unwrap();
            let p = Predictor::train(ModelKind::NeuralNet, FeatureSet::E, &samples, 1).unwrap();
            (lab, p)
        })
    }

    #[test]
    fn least_interference_beats_packing_on_mixed_jobs() {
        let (lab, p) = shared();
        let sched = Scheduler::new(lab, p, 0);
        // 4 memory hogs + 4 compute jobs, 2 sockets of 6 cores.
        let jobs: Vec<String> = ["cg", "cg", "cg", "cg", "ep", "ep", "ep", "ep"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let packed = sched.place(&jobs, 2, Policy::PackFirstFit).unwrap();
        let smart = sched.place(&jobs, 2, Policy::LeastInterference).unwrap();
        assert!(
            smart.mean_slowdown() < packed.mean_slowdown(),
            "smart {} vs packed {}",
            smart.mean_slowdown(),
            packed.mean_slowdown()
        );
        // The smart placement should split the hogs across sockets.
        let hogs_per_socket: Vec<usize> = smart
            .sockets
            .iter()
            .map(|s| s.jobs.iter().filter(|j| *j == "cg").count())
            .collect();
        assert_eq!(hogs_per_socket, vec![2, 2], "{smart:?}");
    }

    #[test]
    fn capacity_is_enforced() {
        let (lab, p) = shared();
        let sched = Scheduler::new(lab, p, 0);
        let jobs: Vec<String> = (0..12).map(|_| "ep".to_string()).collect();
        // 12 jobs fit on 2 × 6 cores exactly; one socket is not enough.
        assert!(sched.place(&jobs, 2, Policy::PackFirstFit).is_ok());
        assert!(sched.place(&jobs, 1, Policy::PackFirstFit).is_err());
        let thirteen: Vec<String> = (0..13).map(|_| "ep".to_string()).collect();
        assert!(sched.place(&thirteen, 2, Policy::PackFirstFit).is_err());
    }

    #[test]
    fn solo_job_has_unit_slowdown() {
        let (lab, p) = shared();
        let sched = Scheduler::new(lab, p, 0);
        let sd = sched.predicted_slowdown("canneal", &[]).unwrap();
        assert!((sd - 1.0).abs() < 0.15, "solo slowdown {sd}");
    }

    #[test]
    fn placement_metrics() {
        let (lab, p) = shared();
        let sched = Scheduler::new(lab, p, 0);
        let jobs: Vec<String> = ["cg", "ep"].iter().map(|s| s.to_string()).collect();
        let pl = sched.place(&jobs, 2, Policy::LeastInterference).unwrap();
        assert_eq!(pl.predicted_slowdowns.len(), 2);
        assert!(pl.max_slowdown() >= pl.mean_slowdown());
        assert!(pl.sockets_used() >= 1);
    }
}
