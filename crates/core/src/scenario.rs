//! Co-location scenarios: what runs with what, at which P-state.

/// A co-location scenario: one target application plus co-located
/// applications on the same multicore processor at a given P-state.
///
/// The training data uses homogeneous co-location (all co-runners
/// identical, §IV-B3), but scenarios are general: heterogeneous mixes are
/// expressed with multiple `(name, count)` entries, and the prediction
/// features (sums over co-apps) are well-defined either way.
#[derive(Clone, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Scenario {
    /// Name of the target application (the one whose time we predict).
    pub target: String,
    /// Co-located applications: `(app name, copies)`.
    pub co_located: Vec<(String, usize)>,
    /// P-state index (0 = fastest).
    pub pstate: usize,
}

impl Scenario {
    /// A solo (baseline) scenario.
    pub fn solo(target: impl Into<String>, pstate: usize) -> Scenario {
        Scenario {
            target: target.into(),
            co_located: vec![],
            pstate,
        }
    }

    /// The paper's training shape: `count` copies of a single co-runner.
    pub fn homogeneous(
        target: impl Into<String>,
        co_app: impl Into<String>,
        count: usize,
        pstate: usize,
    ) -> Scenario {
        Scenario {
            target: target.into(),
            co_located: vec![(co_app.into(), count)],
            pstate,
        }
    }

    /// Total number of co-located application instances.
    pub fn num_co_located(&self) -> usize {
        self.co_located.iter().map(|(_, c)| c).sum()
    }

    /// Total cores the scenario occupies (target + co-runners).
    pub fn cores_needed(&self) -> usize {
        1 + self.num_co_located()
    }

    /// Iterate over co-located instances as `(name, copies)` with zero
    /// counts dropped.
    pub fn co_groups(&self) -> impl Iterator<Item = (&str, usize)> {
        self.co_located
            .iter()
            .filter(|(_, c)| *c > 0)
            .map(|(n, c)| (n.as_str(), *c))
    }

    /// A human-readable label, e.g. `canneal+3x cg @P2`.
    pub fn label(&self) -> String {
        if self.co_located.is_empty() {
            return format!("{} solo @P{}", self.target, self.pstate);
        }
        let co: Vec<String> = self.co_groups().map(|(n, c)| format!("{c}x {n}")).collect();
        format!("{}+{} @P{}", self.target, co.join("+"), self.pstate)
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting() {
        let s = Scenario::homogeneous("canneal", "cg", 3, 2);
        assert_eq!(s.num_co_located(), 3);
        assert_eq!(s.cores_needed(), 4);
        assert_eq!(s.label(), "canneal+3x cg @P2");
    }

    #[test]
    fn solo_scenario() {
        let s = Scenario::solo("ep", 0);
        assert_eq!(s.num_co_located(), 0);
        assert_eq!(s.cores_needed(), 1);
        assert_eq!(s.label(), "ep solo @P0");
    }

    #[test]
    fn heterogeneous_mix() {
        let s = Scenario {
            target: "ft".into(),
            co_located: vec![("cg".into(), 2), ("ep".into(), 0), ("sp".into(), 1)],
            pstate: 1,
        };
        assert_eq!(s.num_co_located(), 3);
        // Zero-count groups are skipped.
        let groups: Vec<_> = s.co_groups().collect();
        assert_eq!(groups, vec![("cg", 2), ("sp", 1)]);
        assert_eq!(s.label(), "ft+2x cg+1x sp @P1");
    }
}
