//! Full pairwise cross-interference matrix over the benchmark suite.
//!
//! The ROADMAP's "cross-interference matrix" item, and the empirical
//! check behind the paper's central claim: solo-baseline features carry
//! enough signal to predict slowdown under *mixed-class* co-runners, not
//! only the homogeneous sweeps the training plan contains. For every
//! ordered pair `(target, co)` of suite apps we measure the slowdown of
//! `target` when co-located with one copy of `co` and compare it with
//! the registry-resolved model's prediction — a full 11×11 grid from a
//! model that never saw most of these mixes during training.
//!
//! Two structural invariants are recorded alongside the numbers:
//!
//! - **Identical-pair counter symmetry**: in the `(a, 1×a)` cell both
//!   runner groups execute the same program from the same start state,
//!   so their hardware-counter blocks must be bit-identical. This is the
//!   conformance law `matrix-identical-pair-symmetry`.
//! - **Determinism**: every cell is produced through the lab's memoized
//!   run path, so the matrix is bit-identical at any thread count.

use crate::lab::Lab;
use crate::registry::ModelArtifact;
use crate::scenario::Scenario;
use crate::Result;

/// Aggregate error statistics of predicted vs measured pair times.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MatrixSummary {
    /// Mean percentage error of predicted pair execution time, in percent
    /// (paper's MPE convention).
    pub mpe_pct: f64,
    /// RMS error of predicted pair time, normalized by the mean measured
    /// pair time, in percent.
    pub nrmse_pct: f64,
    /// Worst absolute percentage error over all pair cells.
    pub max_abs_pct_err: f64,
    /// True when every identical-app pair had bit-identical per-group
    /// counter blocks.
    pub identical_pairs_symmetric: bool,
}

/// The measured + predicted pairwise interference matrix. Row `i`,
/// column `j` describes target `apps[i]` co-located with one copy of
/// `apps[j]`.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CrossMatrix {
    /// Machine-spec name the matrix was measured on.
    pub machine: String,
    /// P-state of every run.
    pub pstate: usize,
    /// Digest (hex) of the model artifact whose predictions fill
    /// `predicted_slowdown`.
    pub model_digest: String,
    /// Suite apps, in suite order; indexes both matrix dimensions.
    pub apps: Vec<String>,
    /// Measured solo wall time per app (the slowdown denominators).
    pub solo_time_s: Vec<f64>,
    /// Measured slowdown: `wall(i | 1×j) / wall(i | ∅)`.
    pub measured_slowdown: Vec<Vec<f64>>,
    /// Model-predicted slowdown, normalized by the model's own solo
    /// prediction so a perfect model and the measured matrix agree.
    pub predicted_slowdown: Vec<Vec<f64>>,
    /// Per-app: were the two counter blocks of the `(a, 1×a)` run
    /// bit-identical?
    pub identical_pair_counter_symmetry: Vec<bool>,
    /// Aggregate prediction error.
    pub summary: MatrixSummary,
}

/// Bit-equality of the interference-relevant counter fields of two
/// per-group counter blocks. `completed_runs` is deliberately excluded:
/// the target group is the completion criterion while co-runner groups
/// restart, so run *counts* may legitimately differ even when the two
/// groups did bit-identical work.
pub fn counter_blocks_symmetric(
    a: &coloc_machine::CounterBlock,
    b: &coloc_machine::CounterBlock,
) -> bool {
    a.instructions.to_bits() == b.instructions.to_bits()
        && a.cycles.to_bits() == b.cycles.to_bits()
        && a.llc_accesses.to_bits() == b.llc_accesses.to_bits()
        && a.llc_misses.to_bits() == b.llc_misses.to_bits()
}

impl CrossMatrix {
    /// Measure the full pairwise matrix on `lab` at `pstate` and fill the
    /// predicted side from `artifact`'s predictor. Runs `n` solos plus
    /// `n²` pairs through the lab's parallel sweep path (memoized,
    /// bit-identical at any thread count).
    pub fn compute(lab: &Lab, artifact: &ModelArtifact, pstate: usize) -> Result<CrossMatrix> {
        let apps: Vec<String> = lab.suite().iter().map(|b| b.name.to_string()).collect();
        let n = apps.len();

        // One scenario list — solos first, then pairs row-major — so the
        // whole grid fans out across the lab's worker threads at once.
        let mut scenarios = Vec::with_capacity(n + n * n);
        for a in &apps {
            scenarios.push(Scenario::solo(a, pstate));
        }
        for target in &apps {
            for co in &apps {
                scenarios.push(Scenario {
                    target: target.clone(),
                    co_located: vec![(co.clone(), 1)],
                    pstate,
                });
            }
        }
        let samples = lab.collect_scenarios(&scenarios)?;
        let (solos, pairs) = samples.split_at(n);

        let solo_time_s: Vec<f64> = solos.iter().map(|s| s.actual_time_s).collect();
        let solo_pred: Vec<f64> = solos
            .iter()
            .map(|s| artifact.predictor.predict(&s.features))
            .collect();

        let mut measured = vec![vec![0.0; n]; n];
        let mut predicted = vec![vec![0.0; n]; n];
        let mut abs_err_sum = 0.0;
        let mut sq_err_sum = 0.0;
        let mut time_sum = 0.0;
        let mut max_abs = 0.0f64;
        for i in 0..n {
            for j in 0..n {
                let s = &pairs[i * n + j];
                let pred_time = artifact.predictor.predict(&s.features);
                measured[i][j] = s.actual_time_s / solo_time_s[i];
                predicted[i][j] = pred_time / solo_pred[i];
                let pct = (pred_time - s.actual_time_s) / s.actual_time_s * 100.0;
                abs_err_sum += pct.abs();
                sq_err_sum += (pred_time - s.actual_time_s) * (pred_time - s.actual_time_s);
                time_sum += s.actual_time_s;
                max_abs = max_abs.max(pct.abs());
            }
        }
        let cells = (n * n) as f64;
        let mean_time = time_sum / cells;
        let summary_mpe = abs_err_sum / cells;
        let nrmse = (sq_err_sum / cells).sqrt() / mean_time * 100.0;

        // Identical-app pairs: both groups run the same program from the
        // same start state, so their counter blocks must agree bitwise.
        let mut symmetry = Vec::with_capacity(n);
        for a in &apps {
            let outcome = lab.run_scenario_outcome(&Scenario {
                target: a.clone(),
                co_located: vec![(a.clone(), 1)],
                pstate,
            })?;
            let ok = outcome.counters.len() == 2
                && counter_blocks_symmetric(&outcome.counters[0], &outcome.counters[1]);
            symmetry.push(ok);
        }
        let all_symmetric = symmetry.iter().all(|&s| s);

        Ok(CrossMatrix {
            machine: lab.machine().spec().name.clone(),
            pstate,
            model_digest: artifact.digest_hex(),
            apps,
            solo_time_s,
            measured_slowdown: measured,
            predicted_slowdown: predicted,
            identical_pair_counter_symmetry: symmetry,
            summary: MatrixSummary {
                mpe_pct: summary_mpe,
                nrmse_pct: nrmse,
                max_abs_pct_err: max_abs,
                identical_pairs_symmetric: all_symmetric,
            },
        })
    }

    /// Render the measured matrix as an aligned text table (targets down,
    /// co-runners across), for `coloc matrix` output.
    pub fn render_measured(&self) -> String {
        let mut out = String::new();
        let w = 14usize;
        out.push_str(&format!("{:>w$}", "target\\co", w = w));
        for a in &self.apps {
            out.push_str(&format!("{a:>w$}", w = w));
        }
        out.push('\n');
        for (i, a) in self.apps.iter().enumerate() {
            out.push_str(&format!("{a:>w$}", w = w));
            for j in 0..self.apps.len() {
                out.push_str(&format!("{:>w$.4}", self.measured_slowdown[i][j], w = w));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureSet;
    use crate::plan::TrainingPlan;
    use crate::predictor::ModelKind;
    use crate::registry::{ModelRegistry, TrainRequest};
    use coloc_machine::presets;

    fn lab() -> Lab {
        Lab::new(presets::xeon_e5649(), coloc_workloads::standard(), 7)
            .unwrap()
            .with_threads(4)
    }

    fn small_artifact(lab: &Lab) -> std::sync::Arc<ModelArtifact> {
        let registry = ModelRegistry::new();
        let plan = TrainingPlan {
            pstates: vec![0],
            targets: lab.suite().iter().map(|b| b.name.to_string()).collect(),
            co_runners: coloc_workloads::training_co_runners()
                .iter()
                .map(|b| b.name.to_string())
                .collect(),
            counts: vec![1, 3],
        };
        registry
            .resolve(
                lab,
                &TrainRequest {
                    kind: ModelKind::Linear,
                    set: FeatureSet::F,
                    plan,
                    seed: 1,
                    policy: None,
                },
            )
            .unwrap()
    }

    #[test]
    fn matrix_is_full_identical_pairs_symmetric_and_deterministic() {
        let lab1 = lab();
        let artifact = small_artifact(&lab1);
        let m1 = CrossMatrix::compute(&lab1, &artifact, 0).unwrap();
        let n = m1.apps.len();
        assert_eq!(n, lab1.suite().len());
        assert_eq!(m1.measured_slowdown.len(), n);
        assert!(m1.measured_slowdown.iter().all(|row| row.len() == n));
        assert!(
            m1.summary.identical_pairs_symmetric,
            "identical-app pairs must have bit-identical counter blocks: {:?}",
            m1.identical_pair_counter_symmetry
        );
        // Interference never speeds a target up beyond measurement noise
        // (the lab's default σ is 0.8%, so allow a few σ of jitter).
        for row in &m1.measured_slowdown {
            for &sd in row {
                assert!(sd > 0.95, "measured slowdown far below 1: {sd}");
            }
        }
        assert_eq!(m1.model_digest, artifact.digest_hex());

        // Bit-identical across thread counts (the lab's determinism
        // contract extends to the matrix artifact).
        let lab8 = Lab::new(presets::xeon_e5649(), coloc_workloads::standard(), 7)
            .unwrap()
            .with_threads(8);
        let m8 = CrossMatrix::compute(&lab8, &artifact, 0).unwrap();
        assert_eq!(m1, m8);
    }
}
