//! Training-data collection plans (paper Table V and §IV-B3).

use crate::scenario::Scenario;

/// A sweep definition: which scenarios to measure for model training.
///
/// The paper's plan (Table V) is the cross product of
/// `P-states × targets × co-runner apps × co-location counts`, with
/// homogeneous co-runners. Counts run from 1 to `cores − 1`, so the sweep
/// covers everything from one neighbour to a fully loaded machine, sampling
/// "the set of all possible co-locations … in a uniform way that minimizes
/// the amount of training data" (§IV-B3).
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TrainingPlan {
    /// P-state indices to sweep.
    pub pstates: Vec<usize>,
    /// Target application names (the paper uses all eleven).
    pub targets: Vec<String>,
    /// Co-runner application names (the paper uses the four class
    /// representatives: cg, sp, fluidanimate, ep).
    pub co_runners: Vec<String>,
    /// Homogeneous co-location counts (the paper: `1..=cores−1`).
    pub counts: Vec<usize>,
}

impl TrainingPlan {
    /// The paper's exact plan for a machine with `cores` cores and
    /// `num_pstates` P-states, over the given target and co-runner names.
    pub fn paper_shape(
        cores: usize,
        num_pstates: usize,
        targets: Vec<String>,
        co_runners: Vec<String>,
    ) -> TrainingPlan {
        TrainingPlan {
            pstates: (0..num_pstates).collect(),
            targets,
            co_runners,
            counts: (1..cores).collect(),
        }
    }

    /// Materialize every scenario in the plan, in the nested-loop order of
    /// the paper's data-collection pseudocode (§IV-B3: frequency → target →
    /// co-located application → count).
    pub fn scenarios(&self) -> Vec<Scenario> {
        let mut out = Vec::with_capacity(self.len());
        for &p in &self.pstates {
            for t in &self.targets {
                for co in &self.co_runners {
                    for &n in &self.counts {
                        out.push(Scenario::homogeneous(t.clone(), co.clone(), n, p));
                    }
                }
            }
        }
        out
    }

    /// Number of scenarios the plan will produce.
    pub fn len(&self) -> usize {
        self.pstates.len() * self.targets.len() * self.co_runners.len() * self.counts.len()
    }

    /// True when the plan is degenerate.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A thinned copy keeping every `stride`-th scenario dimension value —
    /// used by tests and the training-set-size ablation to trade coverage
    /// for speed deterministically.
    pub fn thinned(&self, pstate_stride: usize, count_stride: usize) -> TrainingPlan {
        TrainingPlan {
            pstates: self
                .pstates
                .iter()
                .copied()
                .step_by(pstate_stride.max(1))
                .collect(),
            targets: self.targets.clone(),
            co_runners: self.co_runners.clone(),
            counts: self
                .counts
                .iter()
                .copied()
                .step_by(count_stride.max(1))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn paper_shape_sizes_match_table5() {
        // 6-core machine: 6 P-states × 11 targets × 4 co-runners × 5 counts.
        let plan = TrainingPlan::paper_shape(
            6,
            6,
            names(&["a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k"]),
            names(&["cg", "sp", "fluidanimate", "ep"]),
        );
        assert_eq!(plan.len(), 6 * 11 * 4 * 5);
        assert_eq!(plan.counts, vec![1, 2, 3, 4, 5]);
        // 12-core machine: counts 1..=11.
        let plan12 = TrainingPlan::paper_shape(12, 6, names(&["a"]), names(&["cg"]));
        assert_eq!(plan12.counts.len(), 11);
    }

    #[test]
    fn scenarios_materialize_in_nested_loop_order() {
        let plan = TrainingPlan {
            pstates: vec![0, 1],
            targets: names(&["t"]),
            co_runners: names(&["x", "y"]),
            counts: vec![1, 2],
        };
        let s = plan.scenarios();
        assert_eq!(s.len(), plan.len());
        assert_eq!(s[0].label(), "t+1x x @P0");
        assert_eq!(s[1].label(), "t+2x x @P0");
        assert_eq!(s[2].label(), "t+1x y @P0");
        assert_eq!(s[4].label(), "t+1x x @P1");
    }

    #[test]
    fn thinning_reduces_deterministically() {
        let plan = TrainingPlan::paper_shape(12, 6, names(&["t"]), names(&["c"]));
        let thin = plan.thinned(2, 3);
        assert_eq!(thin.pstates, vec![0, 2, 4]);
        assert_eq!(thin.counts, vec![1, 4, 7, 10]);
        assert_eq!(thin.thinned(1, 1), thin);
    }

    #[test]
    fn empty_plan() {
        let plan = TrainingPlan {
            pstates: vec![],
            targets: vec![],
            co_runners: vec![],
            counts: vec![],
        };
        assert!(plan.is_empty());
        assert!(plan.scenarios().is_empty());
    }
}
