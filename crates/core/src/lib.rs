//! # coloc-model — the IPPS'15 co-location modeling methodology
//!
//! This crate is the paper's contribution: a pipeline that turns one solo
//! *baseline* measurement per application into models predicting the
//! execution time that application will have under any co-location.
//!
//! The flow (paper §III–§IV):
//!
//! 1. **Baselines** — [`Lab::baselines`] profiles every application alone:
//!    execution time at each P-state plus one counter sample yielding
//!    memory intensity, CM/CA and CA/INS ([`baseline::BaselineDb`]).
//! 2. **Training data** — [`TrainingPlan`] enumerates the co-location
//!    sweep of Table V (each target × each of four class-representative
//!    co-runners × each homogeneous count × each P-state);
//!    [`Lab::collect`] executes it on the machine simulator.
//! 3. **Features** — each run is described by up to eight features
//!    (Table I, [`features::Feature`]) computed **only from baseline
//!    measurements**, grouped into nested sets A–F (Table II,
//!    [`features::FeatureSet`]).
//! 4. **Models** — [`Predictor::train`] fits either the linear model of
//!    Eq. 1 or the scaled-conjugate-gradient neural network of §III-D.
//! 5. **Evaluation** — [`experiment::evaluate_model`] reproduces the
//!    repeated random sub-sampling protocol (100 × 70/30) and reports
//!    MPE/NRMSE, the numbers behind Figs. 1–4.
//!
//! Beyond the paper's core results, the crate implements its §IV-B1
//! class-average prediction mode ([`classavg`]), its §VI energy-modeling
//! extension ([`energy`]), and an interference-aware scheduler
//! ([`scheduler`]) of the kind the introduction motivates.

pub mod baseline;
pub mod classavg;
pub mod energy;
pub mod experiment;
pub mod features;
pub mod lab;
pub mod matrix;
pub mod mix;
pub mod persist;
pub mod plan;
pub mod predictor;
pub mod registry;
pub mod robust;
pub mod sample;
pub mod sanitize;
pub mod scenario;
pub mod scheduler;

pub use baseline::{AppBaseline, BaselineDb};
pub use experiment::{evaluate_model, ModelEvaluation};
pub use features::{Feature, FeatureSet};
pub use lab::{Lab, SweepCheckpoint, SweepStats};
pub use matrix::{CrossMatrix, MatrixSummary};
pub use mix::{CoVector, MixFeatures, MIX_ENCODING_VERSION};
pub use plan::TrainingPlan;
pub use predictor::{ModelKind, Predictor};
pub use registry::{
    machine_spec_digest, ModelArtifact, ModelRegistry, ModelSpec, TrainRequest, TrainedModel,
    MODEL_SCHEMA_VERSION,
};
pub use robust::{train_robust, AttemptOutcome, TrainAttempt, TrainPolicy, TrainingReport};
pub use sample::{samples_to_dataset, Sample};
pub use sanitize::{sanitize_samples, QuarantineReason, SanitizePolicy, SanitizeReport};
pub use scenario::Scenario;

/// Typed error taxonomy of the whole pipeline. Every failure mode the
/// chaos lab exercises — bad specs, flaky measurements, corrupt artifacts,
/// degenerate datasets, interrupted sweeps — has its own variant, so
/// callers can degrade gracefully instead of unwinding.
#[derive(Debug, Clone, PartialEq)]
pub enum ColocError {
    /// Scenario references an application absent from the lab's suite.
    UnknownApp(String),
    /// The machine simulator rejected a run.
    Machine(String),
    /// A machine or fault-plan spec failed validation.
    InvalidSpec(String),
    /// The underlying learner failed.
    Ml(String),
    /// A predictor was asked about a feature set it was not trained for.
    FeatureMismatch { expected: usize, got: usize },
    /// Not enough data for the requested operation.
    InsufficientData(String),
    /// A dataset survived sanitization with too little usable signal to
    /// train anything.
    DegenerateDataset(String),
    /// A persisted artifact exists but cannot be parsed (corrupt or
    /// truncated JSON, wrong shape). Carries the offending path.
    CorruptArtifact { path: String, detail: String },
    /// A persisted artifact could not be read or written at the I/O layer.
    ArtifactIo { path: String, detail: String },
    /// A sweep checkpoint belongs to a different plan/lab configuration
    /// than the resume attempt.
    CheckpointMismatch { expected: u64, found: u64 },
    /// A collect was interrupted (simulated crash) after `completed`
    /// samples; a checkpoint holds the partial progress.
    Interrupted { completed: usize },
    /// A request's deadline expired before (or while) it was served.
    Timeout {
        /// The deadline the request carried, in milliseconds.
        deadline_ms: u64,
    },
    /// A service shed the request because its admission queue was full.
    /// Callers should back off and retry; `queue_depth` is the depth
    /// observed at shed time.
    Overloaded { queue_depth: usize },
    /// The service is draining (e.g. SIGTERM received) and no longer
    /// admits new work.
    ShuttingDown,
}

/// Historical name of [`ColocError`]; the taxonomy grew, the alias stays.
pub type ModelError = ColocError;

impl std::fmt::Display for ColocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ColocError::UnknownApp(n) => write!(f, "unknown application `{n}`"),
            ColocError::Machine(s) => write!(f, "machine error: {s}"),
            ColocError::InvalidSpec(s) => write!(f, "invalid spec: {s}"),
            ColocError::Ml(s) => write!(f, "learner error: {s}"),
            ColocError::FeatureMismatch { expected, got } => {
                write!(
                    f,
                    "feature arity mismatch: model expects {expected}, got {got}"
                )
            }
            ColocError::InsufficientData(s) => write!(f, "insufficient data: {s}"),
            ColocError::DegenerateDataset(s) => write!(f, "degenerate dataset: {s}"),
            ColocError::CorruptArtifact { path, detail } => {
                write!(f, "corrupt artifact `{path}`: {detail}")
            }
            ColocError::ArtifactIo { path, detail } => {
                write!(f, "artifact I/O error `{path}`: {detail}")
            }
            ColocError::CheckpointMismatch { expected, found } => {
                write!(
                    f,
                    "checkpoint belongs to a different sweep \
                     (expected plan digest {expected:#x}, found {found:#x})"
                )
            }
            ColocError::Interrupted { completed } => {
                write!(f, "collect interrupted after {completed} samples")
            }
            ColocError::Timeout { deadline_ms } => {
                write!(f, "deadline expired ({deadline_ms} ms)")
            }
            ColocError::Overloaded { queue_depth } => {
                write!(
                    f,
                    "overloaded (queue depth {queue_depth}); retry with backoff"
                )
            }
            ColocError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for ColocError {}

impl From<coloc_machine::MachineError> for ColocError {
    fn from(e: coloc_machine::MachineError) -> Self {
        match e {
            coloc_machine::MachineError::InvalidSpec(s) => ColocError::InvalidSpec(s),
            coloc_machine::MachineError::InvalidFaultPlan(s) => ColocError::InvalidSpec(s),
            other => ColocError::Machine(other.to_string()),
        }
    }
}

impl From<coloc_ml::MlError> for ColocError {
    fn from(e: coloc_ml::MlError) -> Self {
        ColocError::Ml(e.to_string())
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, ColocError>;
