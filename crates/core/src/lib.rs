//! # coloc-model — the IPPS'15 co-location modeling methodology
//!
//! This crate is the paper's contribution: a pipeline that turns one solo
//! *baseline* measurement per application into models predicting the
//! execution time that application will have under any co-location.
//!
//! The flow (paper §III–§IV):
//!
//! 1. **Baselines** — [`Lab::baselines`] profiles every application alone:
//!    execution time at each P-state plus one counter sample yielding
//!    memory intensity, CM/CA and CA/INS ([`baseline::BaselineDb`]).
//! 2. **Training data** — [`TrainingPlan`] enumerates the co-location
//!    sweep of Table V (each target × each of four class-representative
//!    co-runners × each homogeneous count × each P-state);
//!    [`Lab::collect`] executes it on the machine simulator.
//! 3. **Features** — each run is described by up to eight features
//!    (Table I, [`features::Feature`]) computed **only from baseline
//!    measurements**, grouped into nested sets A–F (Table II,
//!    [`features::FeatureSet`]).
//! 4. **Models** — [`Predictor::train`] fits either the linear model of
//!    Eq. 1 or the scaled-conjugate-gradient neural network of §III-D.
//! 5. **Evaluation** — [`experiment::evaluate_model`] reproduces the
//!    repeated random sub-sampling protocol (100 × 70/30) and reports
//!    MPE/NRMSE, the numbers behind Figs. 1–4.
//!
//! Beyond the paper's core results, the crate implements its §IV-B1
//! class-average prediction mode ([`classavg`]), its §VI energy-modeling
//! extension ([`energy`]), and an interference-aware scheduler
//! ([`scheduler`]) of the kind the introduction motivates.

pub mod baseline;
pub mod classavg;
pub mod energy;
pub mod experiment;
pub mod features;
pub mod lab;
pub mod persist;
pub mod plan;
pub mod predictor;
pub mod sample;
pub mod scenario;
pub mod scheduler;

pub use baseline::{AppBaseline, BaselineDb};
pub use experiment::{evaluate_model, ModelEvaluation};
pub use features::{Feature, FeatureSet};
pub use lab::{Lab, SweepStats};
pub use plan::TrainingPlan;
pub use predictor::{ModelKind, Predictor};
pub use sample::{samples_to_dataset, Sample};
pub use scenario::Scenario;

/// Errors from the modeling pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// Scenario references an application absent from the lab's suite.
    UnknownApp(String),
    /// The machine simulator rejected a run.
    Machine(String),
    /// The underlying learner failed.
    Ml(String),
    /// A predictor was asked about a feature set it was not trained for.
    FeatureMismatch { expected: usize, got: usize },
    /// Not enough data for the requested operation.
    InsufficientData(String),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::UnknownApp(n) => write!(f, "unknown application `{n}`"),
            ModelError::Machine(s) => write!(f, "machine error: {s}"),
            ModelError::Ml(s) => write!(f, "learner error: {s}"),
            ModelError::FeatureMismatch { expected, got } => {
                write!(
                    f,
                    "feature arity mismatch: model expects {expected}, got {got}"
                )
            }
            ModelError::InsufficientData(s) => write!(f, "insufficient data: {s}"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<coloc_machine::MachineError> for ModelError {
    fn from(e: coloc_machine::MachineError) -> Self {
        ModelError::Machine(e.to_string())
    }
}

impl From<coloc_ml::MlError> for ModelError {
    fn from(e: coloc_ml::MlError) -> Self {
        ModelError::Ml(e.to_string())
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, ModelError>;
