//! Graceful-degradation training: sanitize → retry → fall back.
//!
//! [`train_robust`] is the hardened front door to [`Predictor::train`].
//! The degradation ladder, in order:
//!
//! 1. **Sanitize** — [`crate::sanitize::sanitize_samples`] quarantines
//!    non-finite and outlier samples; too few survivors is a
//!    [`ColocError::DegenerateDataset`], reported before any training.
//! 2. **Train + health check** — an attempt is *unhealthy* if training
//!    errors, the final training loss is non-finite or above the policy's
//!    ceiling, or any in-sample prediction is non-finite.
//! 3. **Re-seeded retries** — unhealthy SCG attempts restart from fresh
//!    deterministic seeds (divergence is initialization-sensitive), up to
//!    `retries` times.
//! 4. **Linear fallback** — if every attempt at the requested kind fails
//!    and the policy allows, fall back to the closed-form linear model of
//!    paper Eq. 1, which cannot diverge.
//!
//! Every rung is recorded in a [`TrainingReport`] so chaos sweeps (and
//! operators) can see exactly what degraded and why.

use crate::predictor::{ModelKind, Predictor};
use crate::sample::Sample;
use crate::sanitize::{sanitize_samples, SanitizePolicy, SanitizeReport};
use crate::{ColocError, FeatureSet, Result};
use coloc_ml::rng::derive_seed;

/// Tunables for [`train_robust`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrainPolicy {
    /// Re-seeded attempts after the first (0 = single attempt).
    pub retries: usize,
    /// Accept an attempt only if its training loss (standardized units,
    /// when the learner reports one) is at or below this. `INFINITY`
    /// accepts any finite loss.
    pub loss_ceiling: f64,
    /// Fall back to [`ModelKind::Linear`] when every attempt at the
    /// requested kind fails.
    pub fallback_to_linear: bool,
    /// Sanitization applied before training.
    pub sanitize: SanitizePolicy,
}

impl Default for TrainPolicy {
    fn default() -> TrainPolicy {
        TrainPolicy {
            retries: 2,
            loss_ceiling: f64::INFINITY,
            fallback_to_linear: true,
            sanitize: SanitizePolicy::default(),
        }
    }
}

/// How one training attempt ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// Healthy: this attempt's model was accepted.
    Accepted,
    /// The learner returned an error.
    TrainError,
    /// The final training loss was NaN or infinite.
    NonFiniteLoss,
    /// The loss exceeded [`TrainPolicy::loss_ceiling`].
    LossAboveCeiling,
    /// An in-sample prediction came back non-finite.
    NonFinitePrediction,
}

/// One rung of the ladder.
#[derive(Clone, Debug, PartialEq)]
pub struct TrainAttempt {
    /// Model kind attempted.
    pub kind: ModelKind,
    /// Seed used.
    pub seed: u64,
    /// How it ended.
    pub outcome: AttemptOutcome,
    /// Final training loss, when the learner reported one.
    pub loss: Option<f64>,
    /// Learner error message, when training failed outright.
    pub error: Option<String>,
}

/// Everything [`train_robust`] did to produce (or fail to produce) a model.
#[derive(Clone, Debug, PartialEq)]
pub struct TrainingReport {
    /// Kind the caller asked for.
    pub requested_kind: ModelKind,
    /// Kind actually trained (differs from `requested_kind` on fallback).
    pub final_kind: ModelKind,
    /// What sanitization quarantined.
    pub sanitize: SanitizeReport,
    /// Every attempt, in order.
    pub attempts: Vec<TrainAttempt>,
    /// True when the linear fallback produced the final model.
    pub fell_back: bool,
}

impl TrainingReport {
    /// True if the requested kind was trained first try on clean data.
    pub fn was_uneventful(&self) -> bool {
        !self.fell_back && self.attempts.len() == 1 && self.sanitize.is_clean()
    }
}

impl std::fmt::Display for TrainingReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "requested {} -> trained {} ({} attempt(s){}); sanitize: {}",
            self.requested_kind,
            self.final_kind,
            self.attempts.len(),
            if self.fell_back {
                ", fell back to linear"
            } else {
                ""
            },
            self.sanitize,
        )
    }
}

/// Judge one trained model's health on its own training data.
fn health_check(
    predictor: &Predictor,
    samples: &[Sample],
    loss_ceiling: f64,
) -> (AttemptOutcome, Option<f64>) {
    let loss = predictor.train_loss();
    if let Some(l) = loss {
        if !l.is_finite() {
            return (AttemptOutcome::NonFiniteLoss, loss);
        }
        if l > loss_ceiling {
            return (AttemptOutcome::LossAboveCeiling, loss);
        }
    }
    if samples
        .iter()
        .any(|s| !predictor.predict(&s.features).is_finite())
    {
        return (AttemptOutcome::NonFinitePrediction, loss);
    }
    (AttemptOutcome::Accepted, loss)
}

/// Train `kind` over `set` with the full degradation ladder. Returns the
/// final predictor and the report of how it was obtained; errors only when
/// the sanitized dataset is degenerate or even the fallback fails.
pub fn train_robust(
    kind: ModelKind,
    set: FeatureSet,
    samples: &[Sample],
    seed: u64,
    policy: &TrainPolicy,
) -> Result<(Predictor, TrainingReport)> {
    let (kept, sanitize) = sanitize_samples(samples, &policy.sanitize);
    if kept.len() < policy.sanitize.min_kept.max(2) {
        return Err(ColocError::DegenerateDataset(format!(
            "{} of {} samples survived sanitization (need {}): {}",
            kept.len(),
            samples.len(),
            policy.sanitize.min_kept.max(2),
            sanitize,
        )));
    }

    let mut report = TrainingReport {
        requested_kind: kind,
        final_kind: kind,
        sanitize,
        attempts: Vec::new(),
        fell_back: false,
    };

    // Rung 2–3: requested kind, re-seeded on failure. Retrying a
    // closed-form fit cannot change the answer, so only the NN retries.
    let attempts_for = |k: ModelKind| -> usize {
        match k {
            ModelKind::NeuralNet => policy.retries + 1,
            _ => 1,
        }
    };
    for attempt in 0..attempts_for(kind) {
        // Attempt 0 uses the caller's seed unchanged, preserving
        // bit-compatibility with a plain Predictor::train on clean data.
        let attempt_seed = if attempt == 0 {
            seed
        } else {
            derive_seed(seed, 1000 + attempt as u64)
        };
        match Predictor::train(kind, set, &kept, attempt_seed) {
            Ok(p) => {
                let (outcome, loss) = health_check(&p, &kept, policy.loss_ceiling);
                report.attempts.push(TrainAttempt {
                    kind,
                    seed: attempt_seed,
                    outcome,
                    loss,
                    error: None,
                });
                if outcome == AttemptOutcome::Accepted {
                    return Ok((p, report));
                }
            }
            Err(e) => report.attempts.push(TrainAttempt {
                kind,
                seed: attempt_seed,
                outcome: AttemptOutcome::TrainError,
                loss: None,
                error: Some(e.to_string()),
            }),
        }
    }

    // Rung 4: the linear fallback. No loss ceiling — it is the floor of
    // the ladder, judged only on producing finite predictions.
    if policy.fallback_to_linear && kind != ModelKind::Linear {
        match Predictor::train(ModelKind::Linear, set, &kept, seed) {
            Ok(p) => {
                let (outcome, loss) = health_check(&p, &kept, f64::INFINITY);
                report.attempts.push(TrainAttempt {
                    kind: ModelKind::Linear,
                    seed,
                    outcome,
                    loss,
                    error: None,
                });
                if outcome == AttemptOutcome::Accepted {
                    report.final_kind = ModelKind::Linear;
                    report.fell_back = true;
                    return Ok((p, report));
                }
            }
            Err(e) => report.attempts.push(TrainAttempt {
                kind: ModelKind::Linear,
                seed,
                outcome: AttemptOutcome::TrainError,
                loss: None,
                error: Some(e.to_string()),
            }),
        }
    }

    Err(ColocError::Ml(format!(
        "training exhausted the degradation ladder: {report}"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    fn synthetic(n: usize) -> Vec<Sample> {
        (0..n)
            .map(|i| {
                let base = 150.0 + (i % 7) as f64 * 50.0;
                let ncoapp = (i % 5) as f64;
                let co_mem = ncoapp * 0.01 * (1.0 + (i % 3) as f64);
                let slowdown = 1.0 + 4.0 * co_mem;
                Sample {
                    scenario: Scenario::homogeneous("t", "c", ncoapp as usize, 0),
                    features: [
                        base,
                        ncoapp,
                        co_mem,
                        1e-3,
                        ncoapp * 0.4,
                        ncoapp * 0.03,
                        0.1,
                        0.02,
                    ],
                    actual_time_s: base * slowdown,
                }
            })
            .collect()
    }

    #[test]
    fn clean_data_trains_first_try_bit_compatible() {
        let s = synthetic(80);
        let (p, report) = train_robust(
            ModelKind::NeuralNet,
            FeatureSet::D,
            &s,
            7,
            &TrainPolicy::default(),
        )
        .unwrap();
        assert!(report.was_uneventful(), "{report}");
        assert_eq!(report.final_kind, ModelKind::NeuralNet);
        // Same model a direct train would have produced.
        let direct = Predictor::train(ModelKind::NeuralNet, FeatureSet::D, &s, 7).unwrap();
        assert_eq!(
            p.predict(&s[5].features).to_bits(),
            direct.predict(&s[5].features).to_bits()
        );
    }

    #[test]
    fn faulty_samples_are_quarantined_before_training() {
        let mut s = synthetic(80);
        s[10].actual_time_s = f64::NAN;
        s[20].actual_time_s = 0.0;
        let (p, report) = train_robust(
            ModelKind::Linear,
            FeatureSet::C,
            &s,
            1,
            &TrainPolicy::default(),
        )
        .unwrap();
        assert_eq!(report.sanitize.kept, 78);
        assert!(!report.fell_back);
        assert!(p.predict(&s[0].features).is_finite());
    }

    #[test]
    fn impossible_ceiling_walks_the_ladder_to_linear() {
        let s = synthetic(80);
        let policy = TrainPolicy {
            loss_ceiling: 0.0, // no SCG fit ever reaches exactly zero loss
            ..Default::default()
        };
        let (p, report) =
            train_robust(ModelKind::NeuralNet, FeatureSet::D, &s, 7, &policy).unwrap();
        assert!(report.fell_back);
        assert_eq!(report.final_kind, ModelKind::Linear);
        assert_eq!(p.kind(), ModelKind::Linear);
        // All NN attempts recorded, then the linear rung.
        assert_eq!(report.attempts.len(), policy.retries + 2);
        for a in &report.attempts[..policy.retries + 1] {
            assert_eq!(a.kind, ModelKind::NeuralNet);
            assert_eq!(a.outcome, AttemptOutcome::LossAboveCeiling);
            assert!(a.loss.unwrap() > 0.0);
        }
        assert_eq!(report.attempts.last().unwrap().kind, ModelKind::Linear);
    }

    #[test]
    fn fallback_disabled_surfaces_the_error() {
        let s = synthetic(80);
        let policy = TrainPolicy {
            loss_ceiling: 0.0,
            fallback_to_linear: false,
            ..Default::default()
        };
        let err = train_robust(ModelKind::NeuralNet, FeatureSet::D, &s, 7, &policy).unwrap_err();
        assert!(matches!(err, ColocError::Ml(_)), "{err}");
    }

    #[test]
    fn all_faulty_data_is_degenerate() {
        let mut s = synthetic(20);
        for x in &mut s {
            x.actual_time_s = f64::NAN;
        }
        let err = train_robust(
            ModelKind::Linear,
            FeatureSet::A,
            &s,
            0,
            &TrainPolicy::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ColocError::DegenerateDataset(_)), "{err}");
    }

    #[test]
    fn retries_use_distinct_seeds() {
        let s = synthetic(80);
        let policy = TrainPolicy {
            loss_ceiling: 0.0,
            retries: 3,
            ..Default::default()
        };
        let err = train_robust(
            ModelKind::NeuralNet,
            FeatureSet::D,
            &s,
            7,
            &TrainPolicy {
                fallback_to_linear: false,
                ..policy
            },
        )
        .unwrap_err();
        drop(err);
        // Inspect the seeds via a fallback run that records all attempts.
        let (_, report) =
            train_robust(ModelKind::NeuralNet, FeatureSet::D, &s, 7, &policy).unwrap();
        let seeds: std::collections::HashSet<u64> = report
            .attempts
            .iter()
            .filter(|a| a.kind == ModelKind::NeuralNet)
            .map(|a| a.seed)
            .collect();
        assert_eq!(seeds.len(), policy.retries + 1, "{report}");
    }
}
