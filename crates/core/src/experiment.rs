//! Model evaluation: the repeated random sub-sampling protocol behind the
//! paper's Figures 1–4, plus the PCA feature ranking of §III-B.

use crate::features::{Feature, FeatureSet};
use crate::predictor::ModelKind;
use crate::sample::{samples_to_dataset, Sample};
use crate::Result;
use coloc_linalg::Mat;
use coloc_ml::validate::ValidationConfig;
use coloc_ml::{LinearRegression, Mlp, MlpConfig, Pca};

/// Evaluation outcome for one `(kind, set)` model on one machine's data.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct ModelEvaluation {
    /// The learning technique.
    pub kind: ModelKind,
    /// The feature set.
    pub set: FeatureSet,
    /// Mean MPE on training splits, percent (the "training error" series of
    /// Figs. 1–2).
    pub train_mpe: f64,
    /// Mean MPE on withheld splits, percent (the "testing error" series).
    pub test_mpe: f64,
    /// Mean NRMSE on training splits, percent (Figs. 3–4).
    pub train_nrmse: f64,
    /// Mean NRMSE on withheld splits, percent.
    pub test_nrmse: f64,
    /// Std-dev of the per-partition test MPE (the paper reports ≤ 0.25%).
    pub test_mpe_std: f64,
}

/// Evaluate one model with repeated random sub-sampling (paper §IV-B4:
/// 70/30 splits, 100 partitions, averaged).
pub fn evaluate_model(
    samples: &[Sample],
    kind: ModelKind,
    set: FeatureSet,
    cfg: &ValidationConfig,
) -> Result<ModelEvaluation> {
    let data = samples_to_dataset(samples, set)?;
    let report = match kind {
        ModelKind::Linear => {
            coloc_ml::validate(&data, cfg, |train, _seed| LinearRegression::fit(train))?
        }
        ModelKind::NeuralNet => coloc_ml::validate(&data, cfg, |train, seed| {
            Mlp::fit(train, &MlpConfig::for_features(set.arity(), seed))
        })?,
        ModelKind::QuadraticLinear => coloc_ml::validate(&data, cfg, |train, _seed| {
            coloc_ml::QuadraticRegression::fit(train)
        })?,
    };
    Ok(ModelEvaluation {
        kind,
        set,
        train_mpe: report.train_mpe,
        test_mpe: report.test_mpe,
        train_nrmse: report.train_nrmse,
        test_nrmse: report.test_nrmse,
        test_mpe_std: report.test_mpe_std(),
    })
}

/// Evaluate the full 2×6 grid — the complete data series for one machine's
/// Figures 1/3 (6-core) or 2/4 (12-core).
pub fn evaluate_grid(samples: &[Sample], cfg: &ValidationConfig) -> Result<Vec<ModelEvaluation>> {
    let mut out = Vec::with_capacity(12);
    for kind in ModelKind::ALL {
        for set in FeatureSet::ALL {
            out.push(evaluate_model(samples, kind, set, cfg)?);
        }
    }
    Ok(out)
}

/// Rank the eight features by PCA importance over a sample set — the
/// paper's §III-B feature-selection analysis. Returns `(feature, score)`
/// descending.
pub fn rank_features(samples: &[Sample]) -> Result<Vec<(Feature, f64)>> {
    if samples.len() < 2 {
        return Err(crate::ModelError::InsufficientData(
            "PCA ranking needs >= 2 samples".into(),
        ));
    }
    let x = Mat::from_fn(samples.len(), 8, |i, j| samples[i].features[j]);
    let pca = Pca::fit(&x)?;
    Ok(pca
        .feature_ranking()
        .into_iter()
        .map(|(idx, score)| (Feature::ALL[idx], score))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    fn synthetic_samples(n: usize) -> Vec<Sample> {
        (0..n)
            .map(|i| {
                let base = 200.0 + (i % 9) as f64 * 40.0;
                let ncoapp = (i % 6) as f64;
                let co_mem = ncoapp * 0.008 * (1.0 + (i % 2) as f64);
                let slowdown = 1.0 + 3.0 * co_mem + 20.0 * co_mem.powi(2);
                Sample {
                    scenario: Scenario::homogeneous("t", "c", ncoapp as usize, 0),
                    features: [
                        base,
                        ncoapp,
                        co_mem,
                        2e-3,
                        ncoapp * 0.3,
                        ncoapp * 0.02,
                        0.1,
                        0.02,
                    ],
                    actual_time_s: base * slowdown * (1.0 + 0.002 * ((i * 37 % 11) as f64 - 5.0)),
                }
            })
            .collect()
    }

    fn quick_cfg() -> ValidationConfig {
        ValidationConfig {
            partitions: 8,
            ..Default::default()
        }
    }

    #[test]
    fn evaluation_produces_finite_errors() {
        let samples = synthetic_samples(150);
        let ev = evaluate_model(&samples, ModelKind::Linear, FeatureSet::C, &quick_cfg()).unwrap();
        assert!(ev.test_mpe.is_finite() && ev.test_mpe > 0.0);
        assert!(ev.train_nrmse.is_finite());
        assert!(ev.test_mpe_std >= 0.0);
    }

    #[test]
    fn richer_feature_sets_help_on_informative_data() {
        let samples = synthetic_samples(200);
        let a = evaluate_model(&samples, ModelKind::Linear, FeatureSet::A, &quick_cfg()).unwrap();
        let c = evaluate_model(&samples, ModelKind::Linear, FeatureSet::C, &quick_cfg()).unwrap();
        assert!(
            c.test_mpe < a.test_mpe,
            "set C ({}) should beat set A ({})",
            c.test_mpe,
            a.test_mpe
        );
    }

    #[test]
    fn grid_covers_all_twelve_models() {
        let samples = synthetic_samples(120);
        let grid = evaluate_grid(&samples, &quick_cfg()).unwrap();
        assert_eq!(grid.len(), 12);
        let kinds: Vec<_> = grid.iter().map(|e| e.kind).collect();
        assert_eq!(kinds.iter().filter(|k| **k == ModelKind::Linear).count(), 6);
    }

    #[test]
    fn feature_ranking_demotes_constant_features() {
        let samples = synthetic_samples(200);
        let ranking = rank_features(&samples).unwrap();
        assert_eq!(ranking.len(), 8);
        // targetMem / targetCmCa / targetCaIns are constant in this data;
        // they must occupy the bottom ranks.
        let bottom: Vec<Feature> = ranking[5..].iter().map(|(f, _)| *f).collect();
        assert!(bottom.contains(&Feature::TargetMem), "{ranking:?}");
        // Scores descend.
        for w in ranking.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn ranking_needs_data() {
        assert!(rank_features(&synthetic_samples(1)).is_err());
    }
}
