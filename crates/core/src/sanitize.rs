//! Dataset sanitization: quarantine fault-damaged samples before training.
//!
//! Fault-injected sweeps (and real PMU collections) produce samples the
//! learners must never see: NaN wall times from failed timer reads, zeroed
//! dropped samples, and noise-burst outliers whose measured time is wildly
//! inconsistent with the run's baseline. [`sanitize_samples`] splits a
//! sample set into a kept portion and a quarantine, reporting per-reason
//! counts so chaos sweeps can assert that every injected fault was caught.
//!
//! Outlier detection works in log-slowdown space: `ln(actual / baseline)`
//! is compared against the robust center (median) and spread (MAD) of the
//! whole set. Slowdowns are physically bounded on a fixed machine — a
//! sample claiming 50× or 0.1× the baseline is a measurement artifact, not
//! contention — so a generous MAD multiplier quarantines only damage, not
//! legitimately contended runs.

use crate::features::Feature;
use crate::sample::Sample;

/// Why a sample was quarantined.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum QuarantineReason {
    /// The measured time is NaN or infinite (failed timer read).
    NonFiniteTime,
    /// The measured time is zero or negative (dropped sample).
    NonPositiveTime,
    /// A feature value is non-finite (corrupt baseline propagation).
    NonFiniteFeature,
    /// The log-slowdown is an extreme outlier against the set's robust
    /// center (noise burst or stuck counter).
    OutlierTime,
}

impl QuarantineReason {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            QuarantineReason::NonFiniteTime => "non-finite-time",
            QuarantineReason::NonPositiveTime => "non-positive-time",
            QuarantineReason::NonFiniteFeature => "non-finite-feature",
            QuarantineReason::OutlierTime => "outlier-time",
        }
    }
}

/// One quarantined sample.
#[derive(Clone, Debug, PartialEq)]
pub struct Quarantined {
    /// Index into the original sample slice.
    pub index: usize,
    /// Scenario label, for human-readable reports.
    pub scenario: String,
    /// Why it was pulled.
    pub reason: QuarantineReason,
}

/// Tunables for [`sanitize_samples`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SanitizePolicy {
    /// Quarantine when `|ln(slowdown) − median|` exceeds this multiple of
    /// the (floored) MAD. Large by design: real contention spreads
    /// log-slowdowns far less than noise bursts do.
    pub mad_threshold: f64,
    /// Minimum kept samples for the result to be trainable; callers treat
    /// fewer as a degenerate dataset.
    pub min_kept: usize,
}

impl Default for SanitizePolicy {
    fn default() -> SanitizePolicy {
        SanitizePolicy {
            mad_threshold: 8.0,
            min_kept: 8,
        }
    }
}

/// What sanitization did to a sample set.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SanitizeReport {
    /// Samples inspected.
    pub total: usize,
    /// Samples kept.
    pub kept: usize,
    /// Everything pulled, in original-index order.
    pub quarantined: Vec<Quarantined>,
}

impl SanitizeReport {
    /// Number quarantined for `reason`.
    pub fn count(&self, reason: QuarantineReason) -> usize {
        self.quarantined
            .iter()
            .filter(|q| q.reason == reason)
            .count()
    }

    /// True when nothing was quarantined.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
    }
}

impl std::fmt::Display for SanitizeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} samples: {} kept, {} quarantined \
             ({} non-finite time, {} non-positive time, \
             {} non-finite feature, {} outlier)",
            self.total,
            self.kept,
            self.quarantined.len(),
            self.count(QuarantineReason::NonFiniteTime),
            self.count(QuarantineReason::NonPositiveTime),
            self.count(QuarantineReason::NonFiniteFeature),
            self.count(QuarantineReason::OutlierTime),
        )
    }
}

fn median_of(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// Split `samples` into (kept, report). Deterministic: depends only on the
/// input values, never on ordering tricks or randomness.
pub fn sanitize_samples(
    samples: &[Sample],
    policy: &SanitizePolicy,
) -> (Vec<Sample>, SanitizeReport) {
    let mut report = SanitizeReport {
        total: samples.len(),
        ..Default::default()
    };

    // Pass 1: structural damage — values no learner can even look at.
    let mut candidates: Vec<usize> = Vec::with_capacity(samples.len());
    for (i, s) in samples.iter().enumerate() {
        let reason = if s.features.iter().any(|f| !f.is_finite()) {
            Some(QuarantineReason::NonFiniteFeature)
        } else if !s.actual_time_s.is_finite() {
            Some(QuarantineReason::NonFiniteTime)
        } else if s.actual_time_s <= 0.0 {
            Some(QuarantineReason::NonPositiveTime)
        } else {
            None
        };
        match reason {
            Some(reason) => report.quarantined.push(Quarantined {
                index: i,
                scenario: s.scenario.label(),
                reason,
            }),
            None => candidates.push(i),
        }
    }

    // Pass 2: robust outlier rejection in log-slowdown space over the
    // structurally sound remainder, iterated to a fixed point. A single
    // median/MAD pass is not enough: an extreme burst inflates the MAD
    // and masks milder damage, so re-sanitizing the kept set would flag
    // more — the statistics are re-derived after each round of ejections
    // until nothing new is flagged, which makes sanitization idempotent.
    // Each round needs a handful of points for the median/MAD to mean
    // anything.
    let mut outliers: Vec<usize> = Vec::new();
    let log_sd = |s: &Sample| -> Option<f64> {
        let base = s.features[Feature::BaseExTime.index()];
        if base > 0.0 {
            Some((s.actual_time_s / base).ln())
        } else {
            None
        }
    };
    let mut active: Vec<(usize, f64)> = candidates
        .iter()
        .filter_map(|&i| log_sd(&samples[i]).map(|v| (i, v)))
        .collect();
    while active.len() >= 4 {
        let mut vals: Vec<f64> = active.iter().map(|&(_, v)| v).collect();
        vals.sort_by(f64::total_cmp);
        let median = median_of(&vals);
        let mut devs: Vec<f64> = vals.iter().map(|v| (v - median).abs()).collect();
        devs.sort_by(f64::total_cmp);
        // Floor the MAD: a near-noiseless sweep has MAD ≈ 0, which
        // would flag everything; 0.05 ≈ a 5% slowdown band.
        let mad = median_of(&devs).max(0.05);
        let before = active.len();
        active.retain(|&(i, v)| {
            if (v - median).abs() > policy.mad_threshold * mad {
                outliers.push(i);
                false
            } else {
                true
            }
        });
        if active.len() == before {
            break;
        }
    }
    for &i in &outliers {
        report.quarantined.push(Quarantined {
            index: i,
            scenario: samples[i].scenario.label(),
            reason: QuarantineReason::OutlierTime,
        });
    }
    report
        .quarantined
        .sort_by_key(|q| (q.index, q.reason.label()));

    let quarantined_idx: std::collections::HashSet<usize> =
        report.quarantined.iter().map(|q| q.index).collect();
    let kept: Vec<Sample> = samples
        .iter()
        .enumerate()
        .filter(|(i, _)| !quarantined_idx.contains(i))
        .map(|(_, s)| s.clone())
        .collect();
    report.kept = kept.len();
    (kept, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    fn sample(i: usize, base: f64, actual: f64) -> Sample {
        Sample {
            scenario: Scenario::homogeneous("t", "c", i % 5, 0),
            features: [base, 1.0, 0.01, 1e-3, 0.3, 0.02, 0.1, 0.02],
            actual_time_s: actual,
        }
    }

    fn healthy(n: usize) -> Vec<Sample> {
        // Slowdowns 1.0–1.5: a realistic contention spread.
        (0..n)
            .map(|i| {
                let base = 100.0 + (i % 7) as f64 * 30.0;
                sample(i, base, base * (1.0 + 0.5 * (i % 10) as f64 / 10.0))
            })
            .collect()
    }

    #[test]
    fn clean_data_passes_untouched() {
        let s = healthy(40);
        let (kept, report) = sanitize_samples(&s, &SanitizePolicy::default());
        assert_eq!(kept.len(), 40);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.total, 40);
    }

    #[test]
    fn structural_damage_is_quarantined_by_reason() {
        let mut s = healthy(20);
        s[3].actual_time_s = f64::NAN;
        s[7].actual_time_s = 0.0;
        s[11].features[2] = f64::INFINITY;
        let (kept, report) = sanitize_samples(&s, &SanitizePolicy::default());
        assert_eq!(kept.len(), 17);
        assert_eq!(report.count(QuarantineReason::NonFiniteTime), 1);
        assert_eq!(report.count(QuarantineReason::NonPositiveTime), 1);
        assert_eq!(report.count(QuarantineReason::NonFiniteFeature), 1);
        assert_eq!(report.quarantined[0].index, 3);
    }

    #[test]
    fn extreme_outliers_are_quarantined_but_contention_is_not() {
        let mut s = healthy(40);
        // A 40× burst and a stuck-counter 0.02× collapse.
        s[5].actual_time_s = s[5].features[0] * 40.0;
        s[9].actual_time_s = s[9].features[0] * 0.02;
        let (kept, report) = sanitize_samples(&s, &SanitizePolicy::default());
        assert_eq!(kept.len(), 38, "{report}");
        assert_eq!(report.count(QuarantineReason::OutlierTime), 2);
        // A legitimate 2× contended sample survives the same policy.
        let mut s = healthy(40);
        s[5].actual_time_s = s[5].features[0] * 2.0;
        let (kept, _) = sanitize_samples(&s, &SanitizePolicy::default());
        assert_eq!(kept.len(), 40);
    }

    #[test]
    fn tiny_sets_skip_outlier_detection() {
        // 3 candidates: median/MAD are meaningless, pass 2 must not run.
        let s = vec![
            sample(0, 100.0, 100.0),
            sample(1, 100.0, 5000.0),
            sample(2, 100.0, 110.0),
        ];
        let (kept, report) = sanitize_samples(&s, &SanitizePolicy::default());
        assert_eq!(kept.len(), 3);
        assert!(report.is_clean());
    }

    #[test]
    fn report_display_is_readable() {
        let mut s = healthy(10);
        s[2].actual_time_s = f64::NAN;
        let (_, report) = sanitize_samples(&s, &SanitizePolicy::default());
        let text = format!("{report}");
        assert!(text.contains("10 samples"), "{text}");
        assert!(text.contains("9 kept"), "{text}");
        assert!(text.contains("1 non-finite time"), "{text}");
    }
}
