//! Heterogeneous co-runner feature encoding.
//!
//! The paper's eight features (Table I) describe co-runners only through
//! three *sums* over the mix (`coAppMem`, `coAppCM/CA`, `coAppCA/INS`), a
//! representation that cannot distinguish two different mixes with equal
//! sums. [`MixFeatures`] is the canonical intermediate encoding that can:
//! it keeps one baseline-derived feature *vector per co-runner group*
//! (Alves & Drummond's quantitative cross-application interference view)
//! and *lowers* to the paper's summed form on demand.
//!
//! The lowering is the single definition of co-runner summation in the
//! workspace — [`crate::Lab::featurize`] routes through it — and the
//! homogeneous case is **bit-identical** to the historical inline sums:
//! groups are accumulated in [`crate::Scenario::co_groups`] order with the
//! same `count as f64 * baseline` multiply-add sequence, so every float
//! rounding step is preserved. The conformance suite gates this (the
//! differential sweep and the `mixed-pair-order-invariance` law both
//! re-check the sums against an independent re-implementation).
//!
//! The encoding is digest-stable: [`MixFeatures::digest`] writes a
//! versioned canonical byte stream through [`IrWriter`], pinned by the
//! `digest_stability` fixture alongside the `ScenarioIr` lines, with the
//! same append-only discipline.

use crate::baseline::BaselineDb;
use crate::features::Feature;
use crate::scenario::Scenario;
use crate::{ModelError, Result};
use coloc_machine::IrWriter;

/// Baseline-derived feature vector of one co-runner group: the three
/// per-app quantities the paper's co-runner sums are built from, kept
/// per-group instead of pre-summed.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CoVector {
    /// Suite application name.
    pub app: String,
    /// Instances of this app in the mix.
    pub count: usize,
    /// Solo memory intensity (LLC misses / instruction).
    pub memory_intensity: f64,
    /// Solo LLC miss ratio (CM/CA).
    pub cm_ca: f64,
    /// Solo LLC accesses per instruction (CA/INS).
    pub ca_ins: f64,
}

/// Per-co-runner feature vectors for one scenario: the heterogeneous-mix
/// generalization of the paper's feature row, lowered to the classic
/// eight-feature array by [`MixFeatures::lower`].
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MixFeatures {
    /// Target application name.
    pub target: String,
    /// P-state index the scenario runs at.
    pub pstate: usize,
    /// Target solo execution time at `pstate`, seconds (`baseExTime`).
    pub base_time_s: f64,
    /// Target solo memory intensity (`targetMem`).
    pub target_mem: f64,
    /// Target solo CM/CA (`targetCM/CA`).
    pub target_cm_ca: f64,
    /// Target solo CA/INS (`targetCA/INS`).
    pub target_ca_ins: f64,
    /// One feature vector per co-runner group, in scenario listing order
    /// (zero-count groups dropped, as in [`Scenario::co_groups`]).
    pub co: Vec<CoVector>,
}

/// Encoding schema version, bumped on any change to the canonical byte
/// stream [`MixFeatures::digest`] writes. Version 1: the layout below.
pub const MIX_ENCODING_VERSION: u8 = 1;

impl MixFeatures {
    /// Build the mix encoding for `scenario` from baseline measurements
    /// only — the same inputs (and the same failure modes, in the same
    /// order) as the historical `Lab::featurize`.
    pub fn from_baselines(db: &BaselineDb, scenario: &Scenario) -> Result<MixFeatures> {
        let target = db
            .get(&scenario.target)
            .ok_or_else(|| ModelError::UnknownApp(scenario.target.clone()))?;
        let base_time_s = target
            .time_at(scenario.pstate)
            .ok_or(ModelError::Machine(format!(
                "no baseline at P-state {}",
                scenario.pstate
            )))?;
        let mut co = Vec::new();
        for (name, count) in scenario.co_groups() {
            let b = db
                .get(name)
                .ok_or_else(|| ModelError::UnknownApp(name.to_string()))?;
            co.push(CoVector {
                app: name.to_string(),
                count,
                memory_intensity: b.memory_intensity,
                cm_ca: b.cm_ca,
                ca_ins: b.ca_ins,
            });
        }
        Ok(MixFeatures {
            target: scenario.target.clone(),
            pstate: scenario.pstate,
            base_time_s,
            target_mem: target.memory_intensity,
            target_cm_ca: target.cm_ca,
            target_ca_ins: target.ca_ins,
            co,
        })
    }

    /// Total co-located instances (integer sum, like
    /// [`Scenario::num_co_located`]).
    pub fn num_co_located(&self) -> usize {
        self.co.iter().map(|g| g.count).sum()
    }

    /// Lower the per-group vectors to the paper's eight-feature array.
    ///
    /// The three co-runner sums accumulate in group listing order with a
    /// `0.0`-initialized `count as f64 * value` multiply-add per group —
    /// the exact float operation sequence the inline featurizer always
    /// used, so the homogeneous case is bit-identical by construction.
    pub fn lower(&self) -> [f64; 8] {
        let mut co_mem = 0.0;
        let mut co_cm_ca = 0.0;
        let mut co_ca_ins = 0.0;
        for g in &self.co {
            co_mem += g.count as f64 * g.memory_intensity;
            co_cm_ca += g.count as f64 * g.cm_ca;
            co_ca_ins += g.count as f64 * g.ca_ins;
        }
        let mut out = [0.0; 8];
        out[Feature::BaseExTime.index()] = self.base_time_s;
        out[Feature::NumCoApp.index()] = self.num_co_located() as f64;
        out[Feature::CoAppMem.index()] = co_mem;
        out[Feature::TargetMem.index()] = self.target_mem;
        out[Feature::CoAppCmCa.index()] = co_cm_ca;
        out[Feature::CoAppCaIns.index()] = co_ca_ins;
        out[Feature::TargetCmCa.index()] = self.target_cm_ca;
        out[Feature::TargetCaIns.index()] = self.target_ca_ins;
        out
    }

    /// 128-bit digest of the canonical encoding: version byte, target
    /// identity and baselines, then each co vector length-prefixed in
    /// order. Pinned by the digest-stability fixture; extend append-only.
    pub fn digest(&self) -> u128 {
        let mut d = IrWriter::new();
        d.byte(MIX_ENCODING_VERSION);
        d.str(&self.target);
        d.usize(self.pstate);
        d.f64(self.base_time_s);
        d.f64(self.target_mem);
        d.f64(self.target_cm_ca);
        d.f64(self.target_ca_ins);
        d.usize(self.co.len());
        for g in &self.co {
            d.str(&g.app);
            d.usize(g.count);
            d.f64(g.memory_intensity);
            d.f64(g.cm_ca);
            d.f64(g.ca_ins);
        }
        d.finish()
    }

    /// 64-bit fold of [`MixFeatures::digest`] (same fold as
    /// `ScenarioIr::digest64`).
    pub fn digest64(&self) -> u64 {
        let d = self.digest();
        (d >> 64) as u64 ^ d as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::AppBaseline;

    fn db() -> BaselineDb {
        let mut db = BaselineDb::new();
        for (name, t, mem, cm, ca) in [
            ("t", 100.0, 1e-3, 0.1, 0.02),
            ("a", 90.0, 1.8e-2, 0.5, 0.036),
            ("b", 80.0, 1.1e-5, 0.02, 0.004),
        ] {
            db.insert(AppBaseline {
                name: name.into(),
                exec_time_s: vec![t, t * 1.2],
                memory_intensity: mem,
                cm_ca: cm,
                ca_ins: ca,
            });
        }
        db
    }

    fn legacy_sums(db: &BaselineDb, sc: &Scenario) -> [f64; 8] {
        // Independent re-implementation of the historical inline sums.
        let target = db.get(&sc.target).unwrap();
        let mut co_mem = 0.0;
        let mut co_cm_ca = 0.0;
        let mut co_ca_ins = 0.0;
        for (name, count) in sc.co_groups() {
            let b = db.get(name).unwrap();
            co_mem += count as f64 * b.memory_intensity;
            co_cm_ca += count as f64 * b.cm_ca;
            co_ca_ins += count as f64 * b.ca_ins;
        }
        let mut out = [0.0; 8];
        out[Feature::BaseExTime.index()] = target.time_at(sc.pstate).unwrap();
        out[Feature::NumCoApp.index()] = sc.num_co_located() as f64;
        out[Feature::CoAppMem.index()] = co_mem;
        out[Feature::TargetMem.index()] = target.memory_intensity;
        out[Feature::CoAppCmCa.index()] = co_cm_ca;
        out[Feature::CoAppCaIns.index()] = co_ca_ins;
        out[Feature::TargetCmCa.index()] = target.cm_ca;
        out[Feature::TargetCaIns.index()] = target.ca_ins;
        out
    }

    fn bits(f: &[f64; 8]) -> [u64; 8] {
        std::array::from_fn(|i| f[i].to_bits())
    }

    #[test]
    fn homogeneous_lowering_matches_legacy_sums_bitwise() {
        let db = db();
        for count in 0..6 {
            let sc = Scenario::homogeneous("t", "a", count, 1);
            let mix = MixFeatures::from_baselines(&db, &sc).unwrap();
            assert_eq!(bits(&mix.lower()), bits(&legacy_sums(&db, &sc)));
        }
    }

    #[test]
    fn heterogeneous_lowering_matches_legacy_sums_bitwise() {
        let db = db();
        let sc = Scenario {
            target: "t".into(),
            co_located: vec![("a".into(), 2), ("b".into(), 0), ("b".into(), 3)],
            pstate: 0,
        };
        let mix = MixFeatures::from_baselines(&db, &sc).unwrap();
        // Zero-count groups are dropped from the encoding, like co_groups.
        assert_eq!(mix.co.len(), 2);
        assert_eq!(bits(&mix.lower()), bits(&legacy_sums(&db, &sc)));
    }

    #[test]
    fn two_group_mix_order_is_bitwise_commutative() {
        // A pair mix sums exactly two terms per feature; IEEE addition of
        // two values is commutative, so swapping the groups is identity.
        let db = db();
        let fwd = Scenario {
            target: "t".into(),
            co_located: vec![("a".into(), 1), ("b".into(), 1)],
            pstate: 0,
        };
        let rev = Scenario {
            target: "t".into(),
            co_located: vec![("b".into(), 1), ("a".into(), 1)],
            pstate: 0,
        };
        let f = MixFeatures::from_baselines(&db, &fwd).unwrap().lower();
        let r = MixFeatures::from_baselines(&db, &rev).unwrap().lower();
        assert_eq!(bits(&f), bits(&r));
    }

    #[test]
    fn unknown_apps_fail_in_featurize_order() {
        let db = db();
        match MixFeatures::from_baselines(&db, &Scenario::solo("nope", 0)) {
            Err(ModelError::UnknownApp(n)) => assert_eq!(n, "nope"),
            other => panic!("expected UnknownApp, got {other:?}"),
        }
        match MixFeatures::from_baselines(&db, &Scenario::homogeneous("t", "ghost", 2, 0)) {
            Err(ModelError::UnknownApp(n)) => assert_eq!(n, "ghost"),
            other => panic!("expected UnknownApp, got {other:?}"),
        }
    }

    #[test]
    fn digest_separates_mixes_with_equal_sums() {
        // Two different mixes engineered to have identical feature sums
        // still get distinct canonical digests — the whole point of
        // keeping per-group vectors.
        let db = db();
        let one = MixFeatures::from_baselines(
            &db,
            &Scenario {
                target: "t".into(),
                co_located: vec![("a".into(), 2)],
                pstate: 0,
            },
        )
        .unwrap();
        let two = MixFeatures::from_baselines(
            &db,
            &Scenario {
                target: "t".into(),
                co_located: vec![("a".into(), 1), ("a".into(), 1)],
                pstate: 0,
            },
        )
        .unwrap();
        assert_eq!(
            bits(&one.lower())[Feature::CoAppMem.index()],
            bits(&two.lower())[Feature::CoAppMem.index()]
        );
        assert_ne!(one.digest(), two.digest());
        assert_eq!(
            one.digest64(),
            ((one.digest() >> 64) as u64) ^ (one.digest() as u64)
        );
    }
}
