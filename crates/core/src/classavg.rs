//! Class-average prediction mode (paper §IV-B1).
//!
//! "Should a system developer not have detailed memory intensity
//! information about the applications running in the system, but still
//! \[have\] a general idea of how memory intensive the applications might
//! be, … the developer can still gain some insight … by running the model
//! with average values for that application's class."
//!
//! [`ClassAverager`] computes per-class average feature values from a
//! baseline database and featurizes scenarios using only class membership
//! for the cache-behaviour features (exact baseline execution time is still
//! used — a resource manager always knows how long a job ran alone).

use crate::baseline::BaselineDb;
use crate::features::Feature;
use crate::lab::Lab;
use crate::scenario::Scenario;
use crate::{ModelError, Result};
use coloc_workloads::MemoryClass;
use std::collections::BTreeMap;

/// Per-class average cache-behaviour values.
#[derive(Clone, Copy, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ClassAverages {
    /// Mean memory intensity of the class's applications.
    pub memory_intensity: f64,
    /// Mean CM/CA.
    pub cm_ca: f64,
    /// Mean CA/INS.
    pub ca_ins: f64,
}

/// Featurizer that substitutes class averages for exact measurements.
#[derive(Clone, Debug)]
pub struct ClassAverager {
    averages: BTreeMap<MemoryClass, ClassAverages>,
    class_of: BTreeMap<String, MemoryClass>,
}

impl ClassAverager {
    /// Build from a lab: classes come from the suite's documentation,
    /// averages from the measured baselines.
    pub fn from_lab(lab: &Lab) -> ClassAverager {
        let mut class_of = BTreeMap::new();
        for b in lab.suite() {
            class_of.insert(b.name.to_string(), b.class);
        }
        Self::from_parts(lab.baselines(), &class_of)
    }

    /// Build from an explicit baseline database and class map.
    pub fn from_parts(db: &BaselineDb, class_of: &BTreeMap<String, MemoryClass>) -> ClassAverager {
        let mut sums: BTreeMap<MemoryClass, (ClassAverages, usize)> = BTreeMap::new();
        for b in db.iter() {
            if let Some(&class) = class_of.get(&b.name) {
                let e = sums.entry(class).or_default();
                e.0.memory_intensity += b.memory_intensity;
                e.0.cm_ca += b.cm_ca;
                e.0.ca_ins += b.ca_ins;
                e.1 += 1;
            }
        }
        let averages = sums
            .into_iter()
            .map(|(class, (s, n))| {
                let n = n as f64;
                (
                    class,
                    ClassAverages {
                        memory_intensity: s.memory_intensity / n,
                        cm_ca: s.cm_ca / n,
                        ca_ins: s.ca_ins / n,
                    },
                )
            })
            .collect();
        ClassAverager {
            averages,
            class_of: class_of.clone(),
        }
    }

    /// The averages computed for a class, if any of its apps were measured.
    pub fn averages(&self, class: MemoryClass) -> Option<ClassAverages> {
        self.averages.get(&class).copied()
    }

    /// The class recorded for an application.
    pub fn class_of(&self, app: &str) -> Option<MemoryClass> {
        self.class_of.get(app).copied()
    }

    fn avg_for_app(&self, app: &str) -> Result<ClassAverages> {
        let class = self
            .class_of(app)
            .ok_or_else(|| ModelError::UnknownApp(app.to_string()))?;
        self.averages(class)
            .ok_or_else(|| ModelError::InsufficientData(format!("no measured apps in {class}")))
    }

    /// Featurize a scenario with class-average cache behaviour: the
    /// target's baseline time (and P-state) stay exact; every intensity and
    /// cache-ratio feature is replaced by its class average.
    pub fn featurize(&self, lab: &Lab, scenario: &Scenario) -> Result<[f64; 8]> {
        let mut f = lab.featurize(scenario)?;
        let t_avg = self.avg_for_app(&scenario.target)?;
        f[Feature::TargetMem.index()] = t_avg.memory_intensity;
        f[Feature::TargetCmCa.index()] = t_avg.cm_ca;
        f[Feature::TargetCaIns.index()] = t_avg.ca_ins;

        let mut co_mem = 0.0;
        let mut co_cm_ca = 0.0;
        let mut co_ca_ins = 0.0;
        for (name, count) in scenario.co_groups() {
            let avg = self.avg_for_app(name)?;
            co_mem += count as f64 * avg.memory_intensity;
            co_cm_ca += count as f64 * avg.cm_ca;
            co_ca_ins += count as f64 * avg.ca_ins;
        }
        f[Feature::CoAppMem.index()] = co_mem;
        f[Feature::CoAppCmCa.index()] = co_cm_ca;
        f[Feature::CoAppCaIns.index()] = co_ca_ins;
        Ok(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coloc_machine::presets;

    fn lab() -> Lab {
        Lab::new(presets::xeon_e5649(), coloc_workloads::standard(), 42).unwrap()
    }

    #[test]
    fn averages_sit_inside_class_bands() {
        let lab = lab();
        let avg = ClassAverager::from_lab(&lab);
        for class in MemoryClass::ALL {
            let a = avg.averages(class).expect("every class has apps");
            let (lo, hi) = class.band();
            assert!(
                a.memory_intensity >= lo && a.memory_intensity < hi,
                "{class}: avg MI {:.3e} outside [{lo:.0e},{hi:.0e})",
                a.memory_intensity
            );
        }
    }

    #[test]
    fn class_featurization_keeps_exact_base_time() {
        let lab = lab();
        let avg = ClassAverager::from_lab(&lab);
        let sc = Scenario::homogeneous("canneal", "cg", 4, 1);
        let exact = lab.featurize(&sc).unwrap();
        let approx = avg.featurize(&lab, &sc).unwrap();
        assert_eq!(
            exact[Feature::BaseExTime.index()],
            approx[Feature::BaseExTime.index()]
        );
        assert_eq!(
            exact[Feature::NumCoApp.index()],
            approx[Feature::NumCoApp.index()]
        );
        // Cache features differ (canneal ≠ its class mean in general)…
        assert_ne!(
            exact[Feature::TargetMem.index()],
            approx[Feature::TargetMem.index()]
        );
        // …but stay the right order of magnitude.
        let ratio = approx[Feature::CoAppMem.index()] / exact[Feature::CoAppMem.index()];
        assert!(ratio > 0.2 && ratio < 5.0, "ratio {ratio}");
    }

    #[test]
    fn unknown_app_is_an_error() {
        let lab = lab();
        let avg = ClassAverager::from_lab(&lab);
        let sc = Scenario::homogeneous("doom", "cg", 1, 0);
        assert!(avg.featurize(&lab, &sc).is_err());
    }
}
