//! The measurement laboratory: machines + suite + deterministic seeds.
//!
//! [`Lab`] is the reproduction of the paper's testing environment (§IV):
//! a machine (simulated Xeon), a benchmark suite, and the measurement
//! procedures — baseline profiling through the PAPI-like counter layer,
//! co-location runs, featurization, and parallel sweep collection.

use crate::baseline::{AppBaseline, BaselineDb};
use crate::mix::MixFeatures;
use crate::plan::TrainingPlan;
use crate::sample::Sample;
use crate::scenario::Scenario;
use crate::{ColocError, ModelError, Result};
use coloc_machine::{
    FaultPlan, GroupSchedule, IrWriter, Machine, MachineSpec, RunCache, RunOptions, RunOutcome,
    RunnerGroup, ScenarioIr, StageId, StageProfile,
};
use coloc_ml::rng::{derive_seed, derive_seed_str};
use coloc_perfmon::{EventSet, FlatProfiler};
use coloc_workloads::Benchmark;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default measurement-noise σ: the paper's per-partition error spread is
/// "at most a quarter of a percent", consistent with sub-percent
/// run-to-run timing variation.
pub const DEFAULT_NOISE_SIGMA: f64 = 0.008;

/// Sweep-runtime telemetry: what the lab actually did, as opposed to what
/// it was asked for. Scenario counts and cache traffic diverge exactly
/// when memoization is paying off.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SweepStats {
    /// Scenario executions requested (cache hits included).
    pub scenarios_run: u64,
    /// Runs answered from the memo cache.
    pub cache_hits: u64,
    /// Runs that reached the engine.
    pub cache_misses: u64,
    /// Cache entries displaced by the capacity bound.
    pub cache_evictions: u64,
    /// Piecewise-constant segments actually simulated (misses only).
    pub segments_simulated: u64,
    /// Fixed-point solver iterations actually spent (misses only).
    pub fp_iterations: u64,
    /// Measurement faults injected by the lab's [`FaultPlan`] (fresh runs
    /// only; memoized replays of a faulted run do not re-count).
    pub faults_injected: u64,
    /// Wall time spent inside parallel sweeps ([`Lab::collect`] /
    /// [`Lab::collect_scenarios`]), seconds.
    pub sweep_wall_time_s: f64,
    /// Per-stage pipeline invocation counts, indexed by
    /// [`StageId::index`]. All zero unless [`Lab::with_stage_stats`]
    /// enabled instrumentation (the un-instrumented engine path pays no
    /// timing cost).
    pub stage_invocations: [u64; 6],
    /// Per-stage pipeline wall nanoseconds, indexed like
    /// [`SweepStats::stage_invocations`].
    pub stage_nanos: [u64; 6],
}

impl SweepStats {
    /// Multi-line per-stage breakdown (one line per [`StageId`]), or
    /// `None` when no stage instrumentation was collected.
    pub fn stage_summary(&self) -> Option<String> {
        if self.stage_invocations.iter().all(|&n| n == 0) {
            return None;
        }
        let lines: Vec<String> = StageId::ALL
            .iter()
            .map(|id| {
                let i = id.index();
                format!(
                    "  {:<17} {:>9} calls  {:>10.3} ms",
                    id.label(),
                    self.stage_invocations[i],
                    self.stage_nanos[i] as f64 * 1e-6,
                )
            })
            .collect();
        Some(lines.join("\n"))
    }
}

impl std::fmt::Display for SweepStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} scenarios ({} cache hits, {} misses, {} evictions), \
             {} segments, {} fixed-point iters, {} faults injected, \
             {:.2}s sweep wall time",
            self.scenarios_run,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.segments_simulated,
            self.fp_iterations,
            self.faults_injected,
            self.sweep_wall_time_s,
        )
    }
}

/// A machine + suite measurement environment.
pub struct Lab {
    machine: Machine,
    suite: Vec<Benchmark>,
    seed: u64,
    noise_sigma: f64,
    /// Worker threads for sweeps; 0 = one per available CPU.
    threads: usize,
    /// Measurement-fault injection plan; `None` = healthy lab.
    faults: Option<FaultPlan>,
    baselines: OnceLock<BaselineDb>,
    run_cache: RunCache,
    /// Per-stage engine instrumentation, merged across all runs when
    /// enabled via [`Lab::with_stage_stats`]; `None` = uninstrumented.
    stage_profile: Option<Mutex<StageProfile>>,
    segments_simulated: AtomicU64,
    fp_iterations: AtomicU64,
    scenarios_run: AtomicU64,
    faults_injected: AtomicU64,
    /// Nanoseconds spent inside parallel sweeps.
    sweep_nanos: AtomicU64,
}

impl Lab {
    /// Create a lab for `spec` over `suite`, seeding all measurement noise
    /// from `seed`. Uses [`DEFAULT_NOISE_SIGMA`]; adjust with
    /// [`Lab::with_noise`]. Fails with [`ColocError::InvalidSpec`] when the
    /// machine spec does not validate.
    pub fn new(spec: MachineSpec, suite: Vec<Benchmark>, seed: u64) -> Result<Lab> {
        Ok(Lab {
            machine: Machine::new(spec)?,
            suite,
            seed,
            noise_sigma: DEFAULT_NOISE_SIGMA,
            threads: 0,
            faults: None,
            baselines: OnceLock::new(),
            run_cache: RunCache::default(),
            stage_profile: None,
            segments_simulated: AtomicU64::new(0),
            fp_iterations: AtomicU64::new(0),
            scenarios_run: AtomicU64::new(0),
            faults_injected: AtomicU64::new(0),
            sweep_nanos: AtomicU64::new(0),
        })
    }

    /// Override the measurement-noise σ (0 = noiseless). Resets cached
    /// baselines and invalidates the run cache: every cache key embeds
    /// the noise σ, so stale entries could never be returned, but dropping
    /// them keeps the capacity bound working for the new configuration.
    pub fn with_noise(mut self, sigma: f64) -> Lab {
        self.noise_sigma = sigma;
        self.baselines = OnceLock::new();
        self.run_cache.clear();
        self
    }

    /// Inject measurement faults into every subsequent co-location run
    /// according to `plan`. Baselines stay clean — they are measured
    /// through the flat profiler, below the fault layer, matching the
    /// paper's assumption that the one-off solo characterization is
    /// curated while sweep measurements are exposed to flakiness.
    ///
    /// The run cache is cleared because the plan changes every cache key;
    /// fails with [`ColocError::InvalidSpec`] when `plan` has nonsensical
    /// rates.
    pub fn with_faults(mut self, plan: FaultPlan) -> Result<Lab> {
        plan.validate()
            .map_err(coloc_machine::MachineError::InvalidFaultPlan)?;
        self.faults = Some(plan);
        self.run_cache.clear();
        Ok(self)
    }

    /// The active fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Set the worker-thread count for parallel sweeps (0 = one per
    /// available CPU). Results are bit-identical at any setting; this only
    /// controls resources.
    pub fn with_threads(mut self, threads: usize) -> Lab {
        self.threads = threads;
        self
    }

    /// Enable (or disable) per-stage engine instrumentation. When on,
    /// every fresh (cache-missing) run is timed stage by stage and the
    /// counters surface through [`SweepStats::stage_invocations`] /
    /// [`SweepStats::stage_nanos`]. Outcomes are bit-identical either
    /// way; only the timing bookkeeping toggles.
    pub fn with_stage_stats(mut self, enabled: bool) -> Lab {
        self.stage_profile = enabled.then(|| Mutex::new(StageProfile::new()));
        self
    }

    /// The simulated machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The benchmark suite.
    pub fn suite(&self) -> &[Benchmark] {
        &self.suite
    }

    /// The lab's base seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Look up a suite application by name.
    pub fn app(&self, name: &str) -> Result<&Benchmark> {
        self.suite
            .iter()
            .find(|b| b.name == name)
            .ok_or_else(|| ModelError::UnknownApp(name.to_string()))
    }

    fn run_options(&self, label: &str, stream: u64) -> RunOptions {
        RunOptions {
            pstate: 0,
            seed: derive_seed(derive_seed_str(self.seed, label), stream),
            noise_sigma: self.noise_sigma,
            ..RunOptions::default()
        }
    }

    /// Baseline measurements for every suite application: solo execution
    /// time at each P-state (through the flat profiler) plus one counter
    /// sample for the cache ratios. Computed once and cached.
    pub fn baselines(&self) -> &BaselineDb {
        self.baselines.get_or_init(|| {
            let profiler = FlatProfiler::new(&self.machine, EventSet::methodology());
            let mut db = BaselineDb::new();
            for b in &self.suite {
                let mut exec_time_s = Vec::new();
                let mut derived = None;
                for p in 0..self.machine.spec().num_pstates() {
                    let mut opts = self.run_options(b.name, 7_000 + p as u64);
                    opts.pstate = p;
                    let profile = profiler
                        .profile_solo(&b.app, &opts)
                        .expect("baseline run cannot fail for a validated suite");
                    exec_time_s.push(profile.wall_time_s);
                    if p == 0 {
                        derived = Some(profile.derived());
                    }
                }
                let d = derived.expect("at least one P-state");
                db.insert(AppBaseline {
                    name: b.name.to_string(),
                    exec_time_s,
                    memory_intensity: d.memory_intensity,
                    cm_ca: d.miss_ratio,
                    ca_ins: d.access_ratio,
                });
            }
            db
        })
    }

    /// Build the machine workload for a scenario.
    fn workload(&self, scenario: &Scenario) -> Result<Vec<RunnerGroup>> {
        let mut wl = vec![RunnerGroup::solo(self.app(&scenario.target)?.app.clone())];
        for (name, count) in scenario.co_groups() {
            wl.push(RunnerGroup {
                app: self.app(name)?.app.clone(),
                count,
            });
        }
        Ok(wl)
    }

    /// Lower a [`Scenario`] to the canonical [`ScenarioIr`] this lab
    /// would execute it as: the resolved workload, the derived run
    /// options (seed stream, noise σ, P-state), and the lab's fault
    /// plan. [`Lab::run_scenario`] runs exactly this IR, and
    /// [`Lab::plan_digest`] keys checkpoints on its digest — one
    /// encoding for what runs, what is cached, and what is resumable.
    pub fn scenario_ir(&self, scenario: &Scenario) -> Result<ScenarioIr> {
        let workload = self.workload(scenario)?;
        let mut opts = self.run_options(&scenario.label(), 1);
        opts.pstate = scenario.pstate;
        let ir = ScenarioIr::new(self.machine.spec().clone(), workload, opts);
        Ok(match &self.faults {
            Some(plan) => ir.with_faults(*plan),
            None => ir,
        })
    }

    /// Execute one scenario and return the target's measured wall time.
    /// Identical `(workload, options)` pairs are answered from the run
    /// cache; determinism makes the memoized outcome bit-identical to a
    /// fresh simulation.
    pub fn run_scenario(&self, scenario: &Scenario) -> Result<f64> {
        let ir = self.scenario_ir(scenario)?;
        self.run_ir(&ir)
    }

    /// Execute a scenario and return the full engine outcome (counters,
    /// segments, convergence — not just the wall time). The matrix
    /// artifact and the identical-pair symmetry law read per-group
    /// counter blocks from here; the memoized outcome is bit-identical
    /// to a fresh simulation.
    pub fn run_scenario_outcome(&self, scenario: &Scenario) -> Result<std::sync::Arc<RunOutcome>> {
        let ir = self.scenario_ir(scenario)?;
        self.run_ir_outcome(&ir)
    }

    /// Execute an arbitrary [`ScenarioIr`] — including ones carrying
    /// event schedules, which [`Scenario`] cannot express — through the
    /// lab's run cache with the same memoization, fault injection, stage
    /// profiling, and sweep telemetry as [`Lab::run_scenario`].
    pub fn run_ir(&self, ir: &ScenarioIr) -> Result<f64> {
        Ok(self.run_ir_outcome(ir)?.wall_time_s)
    }

    /// [`Lab::run_ir`], returning the whole [`RunOutcome`].
    pub fn run_ir_outcome(&self, ir: &ScenarioIr) -> Result<std::sync::Arc<RunOutcome>> {
        let schedules: Option<&[GroupSchedule]> = ir.schedules.as_deref();
        let (outcome, hit) = match &self.stage_profile {
            Some(shared) => {
                let mut local = StageProfile::new();
                let pair = self.run_cache.run_scheduled_observed(
                    &self.machine,
                    &ir.workload,
                    schedules,
                    &ir.opts,
                    ir.faults.as_ref(),
                    Some(&mut local),
                )?;
                shared.lock().expect("stage profile lock").merge(&local);
                pair
            }
            None => self.run_cache.run_scheduled_with_faults(
                &self.machine,
                &ir.workload,
                schedules,
                &ir.opts,
                ir.faults.as_ref(),
            )?,
        };
        self.scenarios_run.fetch_add(1, Ordering::Relaxed);
        if !hit {
            self.segments_simulated
                .fetch_add(outcome.segments as u64, Ordering::Relaxed);
            self.fp_iterations
                .fetch_add(outcome.fp_iterations, Ordering::Relaxed);
            self.faults_injected
                .fetch_add(outcome.faults.len() as u64, Ordering::Relaxed);
        }
        Ok(outcome)
    }

    /// Execute a scenario batch through the cache's batched oracle path
    /// ([`RunCache::run_batch`]): duplicates collapse onto one engine run
    /// and distinct cold scenarios fan out across the lab's worker
    /// threads. Returns measured wall times in request order,
    /// bit-identical to calling [`Lab::run_scenario`] per element at any
    /// thread count.
    ///
    /// This is the placement-oracle entry point: a placement wave asks
    /// for thousands of socket outcomes at once, most of them repeats.
    /// With an active [`FaultPlan`] the batch falls back to the
    /// per-scenario path (fault injection is keyed and applied per run).
    /// Batch-simulated segment/iteration work is attributed to the cache
    /// counters but not to [`SweepStats::segments_simulated`].
    pub fn run_scenarios_batch(&self, scenarios: &[Scenario]) -> Result<Vec<f64>> {
        let irs = scenarios
            .iter()
            .map(|sc| self.scenario_ir(sc))
            .collect::<Result<Vec<_>>>()?;
        if self.faults.is_none() {
            let batch: Vec<(&[RunnerGroup], RunOptions)> = irs
                .iter()
                .map(|ir| (ir.workload.as_slice(), ir.opts))
                .collect();
            let threads = coloc_ml::parallel::resolve_threads(self.threads, batch.len());
            self.run_cache.run_batch(&self.machine, &batch, threads)?;
        }
        // Read back through the one canonical run path: every scenario is
        // now resident, so this is all hits, and telemetry/stage profiling
        // see the batch exactly like any other sweep.
        irs.iter().map(|ir| self.run_ir(ir)).collect()
    }

    /// Probe the run cache for a scenario without ever simulating:
    /// `Ok(Some(t))` when this exact run is memoized (bit-identical to
    /// what [`Lab::run_scenario`] would return), `Ok(None)` when
    /// answering would need the engine. This is the degraded path of an
    /// overloaded prediction service — a probe costs one digest and one
    /// shard lock, never a simulation. A resident probe counts as a
    /// cache hit (it is one); a miss is not counted, because nothing
    /// fell through to the engine.
    pub fn cached_run(&self, scenario: &Scenario) -> Result<Option<f64>> {
        let ir = self.scenario_ir(scenario)?;
        let key = self.run_cache.key_for_scheduled(
            &self.machine,
            &ir.workload,
            &ir.opts,
            ir.faults.as_ref(),
            ir.schedules.as_deref(),
        );
        Ok(self.run_cache.peek(key).map(|o| o.wall_time_s))
    }

    /// Snapshot the sweep-runtime telemetry accumulated so far.
    pub fn sweep_stats(&self) -> SweepStats {
        let cache = self.run_cache.stats();
        let profile = self
            .stage_profile
            .as_ref()
            .map(|m| *m.lock().expect("stage profile lock"))
            .unwrap_or_default();
        SweepStats {
            scenarios_run: self.scenarios_run.load(Ordering::Relaxed),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            segments_simulated: self.segments_simulated.load(Ordering::Relaxed),
            fp_iterations: self.fp_iterations.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            sweep_wall_time_s: self.sweep_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
            stage_invocations: profile.invocations(),
            stage_nanos: profile.nanos(),
        }
    }

    /// Compute the full eight-feature vector for a scenario from baseline
    /// data only (paper Table I). Fails if the scenario's P-state exceeds
    /// the machine's table or an app is unknown.
    ///
    /// Since the heterogeneous-mix extension this is a thin lowering of
    /// [`Lab::mix_featurize`]; the homogeneous result is bit-identical to
    /// the historical inline sums (conformance-gated by the differential
    /// sweep and the `mixed-pair-order-invariance` law).
    pub fn featurize(&self, scenario: &Scenario) -> Result<[f64; 8]> {
        Ok(self.mix_featurize(scenario)?.lower())
    }

    /// Compute the heterogeneous-mix feature encoding for a scenario: one
    /// [`crate::mix::CoVector`] per co-runner group instead of pre-summed
    /// scalars. [`MixFeatures::lower`] projects it onto the paper's
    /// eight-feature vector.
    pub fn mix_featurize(&self, scenario: &Scenario) -> Result<MixFeatures> {
        MixFeatures::from_baselines(self.baselines(), scenario)
    }

    /// Run and featurize one scenario.
    pub fn sample(&self, scenario: &Scenario) -> Result<Sample> {
        let features = self.featurize(scenario)?;
        let actual_time_s = self.run_scenario(scenario)?;
        Ok(Sample {
            scenario: scenario.clone(),
            features,
            actual_time_s,
        })
    }

    /// Execute a whole training plan, in parallel across scenarios.
    /// Results are in plan order regardless of thread scheduling.
    pub fn collect(&self, plan: &TrainingPlan) -> Result<Vec<Sample>> {
        let scenarios = plan.scenarios();
        self.collect_scenarios(&scenarios)
    }

    /// Execute an explicit scenario list, in parallel, preserving order.
    ///
    /// Workers pull scenarios from a shared work-stealing cursor
    /// ([`coloc_ml::parallel::run_indexed`]): scenario cost varies by an
    /// order of magnitude with the workload mix, so static chunking would
    /// strand the expensive tail on one thread. Results come back in plan
    /// order and are bit-identical at any thread count.
    pub fn collect_scenarios(&self, scenarios: &[Scenario]) -> Result<Vec<Sample>> {
        // Force baselines before fanning out (OnceLock would serialize the
        // first computation anyway; this keeps the timing predictable).
        self.baselines();

        let start = Instant::now();
        let results = coloc_ml::parallel::run_indexed(scenarios.len(), self.threads, |i| {
            self.sample(&scenarios[i])
        });
        self.sweep_nanos
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        results.into_iter().collect()
    }

    /// The paper's default training plan for this lab: all suite apps as
    /// targets, the four class-representative co-runners, all P-states,
    /// counts `1..=cores−1` (Table V).
    pub fn paper_plan(&self) -> TrainingPlan {
        TrainingPlan::paper_shape(
            self.machine.spec().cores,
            self.machine.spec().num_pstates(),
            self.suite.iter().map(|b| b.name.to_string()).collect(),
            coloc_workloads::suite::training_co_runners()
                .iter()
                .map(|b| b.name.to_string())
                .collect(),
        )
    }

    /// 64-bit digest binding a checkpoint to this lab's configuration and
    /// an exact scenario list, built on the canonical [`ScenarioIr`]
    /// encoding: each scenario contributes the digest of the exact IR the
    /// lab would run it as. Any change to the seed, the noise σ, the
    /// fault plan, the machine spec, or the scenarios changes the digest
    /// — which is exactly when resuming would splice incompatible samples
    /// together. A scenario that no longer lowers (e.g. an app renamed
    /// out of the suite) still contributes its label, keeping the digest
    /// total and the mismatch detectable.
    pub fn plan_digest(&self, scenarios: &[Scenario]) -> u64 {
        let mut d = IrWriter::new();
        d.u64(self.seed);
        d.f64(self.noise_sigma);
        d.u64(self.faults.as_ref().map_or(0, FaultPlan::digest));
        d.str(&self.machine.spec().name);
        d.usize(scenarios.len());
        for sc in scenarios {
            match self.scenario_ir(sc) {
                Ok(ir) => {
                    d.byte(1);
                    d.u64(ir.digest64());
                }
                Err(_) => {
                    d.byte(0);
                    d.str(&sc.label());
                }
            }
        }
        d.finish64()
    }

    /// Execute a scenario list with periodic crash-safe checkpointing,
    /// resuming from `cfg.path` when a compatible checkpoint exists.
    ///
    /// On entry, an existing checkpoint is loaded (a corrupt one is a
    /// [`ColocError::CorruptArtifact`]; one written by a different
    /// lab/plan is a [`ColocError::CheckpointMismatch`]) and its samples
    /// are reused verbatim — determinism makes them bit-identical to what
    /// re-running would produce. Progress is flushed atomically every
    /// `cfg.every` samples and once at the end.
    ///
    /// `cfg.crash_after` simulates a crash: after that many *new* samples
    /// the collect checkpoints and returns [`ColocError::Interrupted`],
    /// letting tests and the chaos artifact kill a sweep mid-flight
    /// without process gymnastics.
    pub fn collect_resumable(
        &self,
        scenarios: &[Scenario],
        cfg: &CheckpointConfig,
    ) -> Result<Vec<Sample>> {
        let digest = self.plan_digest(scenarios);
        let mut samples: Vec<Sample> = match crate::persist::load_json::<SweepCheckpoint>(&cfg.path)
        {
            Ok(cp) => {
                if cp.plan_digest != digest {
                    return Err(ColocError::CheckpointMismatch {
                        expected: digest,
                        found: cp.plan_digest,
                    });
                }
                cp.samples
            }
            Err(ColocError::ArtifactIo { .. }) => Vec::new(), // no checkpoint yet
            Err(e) => return Err(e),
        };
        if samples.len() > scenarios.len() {
            return Err(ColocError::CheckpointMismatch {
                expected: digest,
                found: digest, // right plan, impossible length ⇒ tampered
            });
        }

        let every = cfg.every.max(1);
        let mut new_since_start = 0usize;
        while samples.len() < scenarios.len() {
            let mut chunk = every.min(scenarios.len() - samples.len());
            let mut crash = false;
            if let Some(limit) = cfg.crash_after {
                let budget = limit.saturating_sub(new_since_start);
                if budget <= chunk {
                    chunk = budget;
                    crash = true;
                }
            }
            if chunk > 0 {
                let next = &scenarios[samples.len()..samples.len() + chunk];
                samples.extend(self.collect_scenarios(next)?);
                new_since_start += chunk;
            }
            crate::persist::save_json_atomic(
                &SweepCheckpoint {
                    plan_digest: digest,
                    samples: samples.clone(),
                },
                &cfg.path,
            )?;
            if crash {
                return Err(ColocError::Interrupted {
                    completed: samples.len(),
                });
            }
        }
        Ok(samples)
    }
}

/// Durable partial progress of a resumable sweep (see
/// [`Lab::collect_resumable`]). The digest pins the checkpoint to one
/// exact (lab, scenario list) pair.
#[derive(serde::Serialize, serde::Deserialize)]
pub struct SweepCheckpoint {
    /// [`Lab::plan_digest`] of the sweep this progress belongs to.
    pub plan_digest: u64,
    /// Samples collected so far, in plan order.
    pub samples: Vec<Sample>,
}

/// Where and how often [`Lab::collect_resumable`] checkpoints.
#[derive(Clone, Debug)]
pub struct CheckpointConfig {
    /// Checkpoint file (written atomically via a `.tmp` sibling).
    pub path: PathBuf,
    /// Flush after every this many newly collected samples.
    pub every: usize,
    /// Simulate a crash after this many new samples (tests/chaos only).
    pub crash_after: Option<usize>,
}

impl CheckpointConfig {
    /// Checkpoint to `path` every `every` samples, no simulated crash.
    pub fn new(path: impl Into<PathBuf>, every: usize) -> CheckpointConfig {
        CheckpointConfig {
            path: path.into(),
            every,
            crash_after: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::Feature;
    use coloc_machine::presets;

    fn small_lab() -> Lab {
        Lab::new(presets::xeon_e5649(), coloc_workloads::standard(), 42).unwrap()
    }

    #[test]
    fn baselines_cover_suite_and_pstates() {
        let lab = small_lab();
        let db = lab.baselines();
        assert_eq!(db.len(), 11);
        let cg = db.get("cg").unwrap();
        assert_eq!(cg.exec_time_s.len(), 6);
        // Times increase as frequency drops.
        for w in cg.exec_time_s.windows(2) {
            assert!(w[1] > w[0] * 0.98, "{:?}", cg.exec_time_s);
        }
        assert!(cg.memory_intensity > 5e-3);
        let ep = db.get("ep").unwrap();
        assert!(ep.memory_intensity < 2e-5);
    }

    #[test]
    fn baselines_are_cached_and_deterministic() {
        let lab = small_lab();
        let a = lab.baselines().clone();
        let b = lab.baselines().clone();
        assert_eq!(a, b);
        let lab2 = small_lab();
        assert_eq!(a, lab2.baselines().clone());
    }

    #[test]
    fn featurize_matches_table1_semantics() {
        let lab = small_lab();
        let sc = Scenario::homogeneous("canneal", "cg", 3, 2);
        let f = lab.featurize(&sc).unwrap();
        let db = lab.baselines();
        let canneal = db.get("canneal").unwrap();
        let cg = db.get("cg").unwrap();
        assert_eq!(f[Feature::BaseExTime.index()], canneal.exec_time_s[2]);
        assert_eq!(f[Feature::NumCoApp.index()], 3.0);
        assert!((f[Feature::CoAppMem.index()] - 3.0 * cg.memory_intensity).abs() < 1e-12);
        assert_eq!(f[Feature::TargetMem.index()], canneal.memory_intensity);
        assert!((f[Feature::CoAppCmCa.index()] - 3.0 * cg.cm_ca).abs() < 1e-12);
        assert_eq!(f[Feature::TargetCaIns.index()], canneal.ca_ins);
    }

    #[test]
    fn unknown_app_and_bad_pstate_error() {
        let lab = small_lab();
        assert!(matches!(
            lab.featurize(&Scenario::solo("doom", 0)),
            Err(ModelError::UnknownApp(_))
        ));
        assert!(lab.featurize(&Scenario::solo("cg", 17)).is_err());
        assert!(matches!(
            lab.run_scenario(&Scenario::homogeneous("cg", "doom", 1, 0)),
            Err(ModelError::UnknownApp(_))
        ));
    }

    #[test]
    fn co_location_sample_shows_degradation() {
        let lab = small_lab();
        let solo = lab.run_scenario(&Scenario::solo("canneal", 0)).unwrap();
        let crowded = lab
            .run_scenario(&Scenario::homogeneous("canneal", "cg", 5, 0))
            .unwrap();
        assert!(crowded > solo * 1.03, "crowded {crowded} vs solo {solo}");
    }

    #[test]
    fn collect_preserves_plan_order_and_parallel_determinism() {
        let lab = small_lab();
        let plan = TrainingPlan {
            pstates: vec![0],
            targets: vec!["canneal".into(), "ep".into()],
            co_runners: vec!["cg".into()],
            counts: vec![1, 3],
        };
        let s1 = lab.collect(&plan).unwrap();
        let s2 = lab.collect(&plan).unwrap();
        assert_eq!(s1.len(), 4);
        assert_eq!(s1[0].scenario.label(), "canneal+1x cg @P0");
        for (a, b) in s1.iter().zip(&s2) {
            assert_eq!(a.actual_time_s, b.actual_time_s);
            assert_eq!(a.features, b.features);
        }
    }

    #[test]
    fn paper_plan_matches_machine_shape() {
        let lab = small_lab();
        let plan = lab.paper_plan();
        assert_eq!(plan.len(), 6 * 11 * 4 * 5);
        let lab12 = Lab::new(presets::xeon_e5_2697v2(), coloc_workloads::standard(), 1).unwrap();
        assert_eq!(lab12.paper_plan().len(), 6 * 11 * 4 * 11);
    }

    #[test]
    fn noiseless_lab_is_exact() {
        let lab = small_lab().with_noise(0.0);
        let a = lab.run_scenario(&Scenario::solo("ep", 0)).unwrap();
        let b = lab.run_scenario(&Scenario::solo("ep", 0)).unwrap();
        assert_eq!(a, b);
    }

    fn small_plan() -> TrainingPlan {
        TrainingPlan {
            pstates: vec![0, 3],
            targets: vec!["canneal".into(), "ep".into(), "cg".into()],
            co_runners: vec!["cg".into(), "ep".into()],
            counts: vec![1, 3, 5],
        }
    }

    #[test]
    fn collect_is_bit_identical_across_thread_counts() {
        let plan = small_plan();
        let reference = small_lab().with_threads(1).collect(&plan).unwrap();
        for threads in [2, 8] {
            let lab = small_lab().with_threads(threads);
            let got = lab.collect(&plan).unwrap();
            assert_eq!(got.len(), reference.len());
            for (a, b) in got.iter().zip(&reference) {
                assert_eq!(a.scenario.label(), b.scenario.label());
                assert_eq!(a.actual_time_s.to_bits(), b.actual_time_s.to_bits());
                for (fa, fb) in a.features.iter().zip(b.features.iter()) {
                    assert_eq!(fa.to_bits(), fb.to_bits());
                }
            }
        }
    }

    #[test]
    fn repeat_collect_is_served_from_cache() {
        let lab = small_lab().with_threads(2);
        let plan = small_plan();
        let cold = lab.collect(&plan).unwrap();
        let after_cold = lab.sweep_stats();
        assert_eq!(after_cold.scenarios_run as usize, plan.len());
        assert!(after_cold.cache_misses >= plan.len() as u64);
        assert!(after_cold.segments_simulated > 0);
        assert!(after_cold.fp_iterations > 0);
        assert!(after_cold.sweep_wall_time_s > 0.0);

        let warm = lab.collect(&plan).unwrap();
        let after_warm = lab.sweep_stats();
        // The warm pass must be answered entirely by the memo cache:
        // misses, segments and fixed-point work all stay flat.
        assert_eq!(after_warm.cache_misses, after_cold.cache_misses);
        assert_eq!(after_warm.segments_simulated, after_cold.segments_simulated);
        assert_eq!(after_warm.fp_iterations, after_cold.fp_iterations);
        assert!(after_warm.cache_hits >= after_cold.cache_hits + plan.len() as u64);
        for (a, b) in cold.iter().zip(&warm) {
            assert_eq!(a.actual_time_s.to_bits(), b.actual_time_s.to_bits());
        }
    }

    #[test]
    fn batch_run_matches_sequential_and_dedups() {
        let lab = small_lab();
        let scenarios = vec![
            Scenario::homogeneous("canneal", "cg", 3, 0),
            Scenario::solo("ep", 0),
            Scenario::homogeneous("canneal", "cg", 3, 0), // duplicate
            Scenario::homogeneous("cg", "ep", 2, 1),
            Scenario::solo("ep", 0), // duplicate
        ];
        let sequential: Vec<f64> = scenarios
            .iter()
            .map(|sc| small_lab().run_scenario(sc).unwrap())
            .collect();
        for threads in [1, 2, 8] {
            let batched = small_lab()
                .with_threads(threads)
                .run_scenarios_batch(&scenarios)
                .unwrap();
            for (a, b) in batched.iter().zip(&sequential) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
        // Dedup: 5 requests, 3 distinct scenarios, 3 engine runs.
        lab.run_scenarios_batch(&scenarios).unwrap();
        assert_eq!(lab.sweep_stats().cache_misses, 3);
        assert_eq!(lab.sweep_stats().scenarios_run, 5);
        // A faulty lab still answers batches (per-scenario fallback).
        let faulty = small_lab().with_faults(FaultPlan::heavy(5)).unwrap();
        let a = faulty.run_scenarios_batch(&scenarios).unwrap();
        let b = faulty.run_scenarios_batch(&scenarios).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // Unknown apps surface as typed errors, not panics.
        assert!(matches!(
            lab.run_scenarios_batch(&[Scenario::solo("doom", 0)]),
            Err(ModelError::UnknownApp(_))
        ));
    }

    #[test]
    fn cached_run_probes_without_simulating() {
        let lab = small_lab();
        let sc = Scenario::solo("cg", 0);
        assert_eq!(lab.cached_run(&sc).unwrap(), None);
        assert_eq!(lab.sweep_stats().cache_misses, 0, "a probe never simulates");
        let t = lab.run_scenario(&sc).unwrap();
        let probed = lab.cached_run(&sc).unwrap().expect("resident after run");
        assert_eq!(probed.to_bits(), t.to_bits());
        assert!(matches!(
            lab.cached_run(&Scenario::solo("doom", 0)),
            Err(ModelError::UnknownApp(_))
        ));
    }

    #[test]
    fn with_noise_resets_the_run_cache() {
        let lab = small_lab();
        let sc = Scenario::solo("cg", 0);
        let a = lab.run_scenario(&sc).unwrap();
        let lab = lab.with_noise(0.0);
        assert_eq!(
            lab.sweep_stats().cache_misses,
            1,
            "clear drops entries, not counters"
        );
        let b = lab.run_scenario(&sc).unwrap();
        assert_ne!(
            a, b,
            "noiseless rerun must not be served from the noisy cache"
        );
    }

    #[test]
    fn sweep_stats_display_is_readable() {
        let s = SweepStats {
            scenarios_run: 10,
            cache_hits: 4,
            cache_misses: 6,
            cache_evictions: 0,
            segments_simulated: 120,
            fp_iterations: 900,
            faults_injected: 3,
            sweep_wall_time_s: 1.25,
            stage_invocations: [0; 6],
            stage_nanos: [0; 6],
        };
        let text = format!("{s}");
        assert!(text.contains("10 scenarios"), "{text}");
        assert!(text.contains("4 cache hits"), "{text}");
        assert!(text.contains("3 faults injected"), "{text}");
        assert!(text.contains("1.25s"), "{text}");
        assert!(s.stage_summary().is_none(), "no stage data collected");
        let mut with_stages = s;
        with_stages.stage_invocations = [10, 10, 40, 40, 10, 0];
        with_stages.stage_nanos = [1_000, 2_000, 3_000, 4_000, 5_000, 0];
        let stages = with_stages.stage_summary().expect("stage data present");
        for label in ["pstate", "phase-sync", "llc-share", "dram-fixed-point"] {
            assert!(stages.contains(label), "{stages}");
        }
        assert!(stages.contains("40 calls"), "{stages}");
    }

    #[test]
    fn stage_stats_flow_through_the_lab() {
        let plan = small_plan();
        let plain = small_lab();
        let instrumented = small_lab().with_stage_stats(true);
        let a = plain.collect(&plan).unwrap();
        let b = instrumented.collect(&plan).unwrap();
        // Instrumentation must not perturb the simulation.
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.actual_time_s.to_bits(), y.actual_time_s.to_bits());
        }
        let off = plain.sweep_stats();
        let on = instrumented.sweep_stats();
        assert_eq!(off.stage_invocations, [0; 6], "off by default");
        assert!(off.stage_summary().is_none());
        // Driver stages run once per segment; solver stages once per
        // fixed-point iteration. The lab's aggregate counters pin both.
        let seg = on.segments_simulated;
        let fp = on.fp_iterations;
        assert_eq!(on.stage_invocations[StageId::PState.index()], seg);
        assert_eq!(on.stage_invocations[StageId::PhaseSync.index()], seg);
        assert_eq!(on.stage_invocations[StageId::LlcShare.index()], fp);
        assert_eq!(on.stage_invocations[StageId::DramFixedPoint.index()], fp);
        assert_eq!(on.stage_invocations[StageId::CounterAccrual.index()], seg);
        assert!(on.stage_summary().is_some());

        // Cache hits do no stage work: a warm pass leaves counters flat.
        instrumented.collect(&plan).unwrap();
        assert_eq!(
            instrumented.sweep_stats().stage_invocations,
            on.stage_invocations
        );
    }

    #[test]
    fn plan_digest_tracks_the_scenario_ir() {
        let plan = small_plan();
        let scenarios = plan.scenarios();
        let base = small_lab().plan_digest(&scenarios);
        // Stable across lab instances and thread settings.
        assert_eq!(base, small_lab().with_threads(8).plan_digest(&scenarios));
        // Every configuration axis moves it.
        let reseeded = Lab::new(presets::xeon_e5649(), coloc_workloads::standard(), 43).unwrap();
        assert_ne!(base, reseeded.plan_digest(&scenarios));
        assert_ne!(base, small_lab().with_noise(0.0).plan_digest(&scenarios));
        assert_ne!(
            base,
            small_lab()
                .with_faults(FaultPlan::heavy(5))
                .unwrap()
                .plan_digest(&scenarios)
        );
        let other_machine =
            Lab::new(presets::xeon_e5_2697v2(), coloc_workloads::standard(), 42).unwrap();
        assert_ne!(base, other_machine.plan_digest(&scenarios));
        assert_ne!(base, small_lab().plan_digest(&scenarios[1..]));
        // An unresolvable scenario still digests (totality), distinctly.
        let mut broken = scenarios.clone();
        broken[0].target = "doom".into();
        assert_ne!(base, small_lab().plan_digest(&broken));
    }

    #[test]
    fn scenario_ir_is_what_run_scenario_executes() {
        let lab = small_lab();
        let sc = Scenario::homogeneous("canneal", "cg", 3, 2);
        let ir = lab.scenario_ir(&sc).unwrap();
        assert_eq!(ir.workload.len(), 2);
        assert_eq!(ir.workload[0].count, 1);
        assert_eq!(ir.workload[1].count, 3);
        assert_eq!(ir.opts.pstate, 2);
        assert!(ir.faults.is_none());
        // Running the IR's machine directly reproduces the lab run
        // (modulo the cache, which is keyed on the same encoding).
        let direct = ir.machine().unwrap().run(&ir.workload, &ir.opts).unwrap();
        let via_lab = lab.run_scenario(&sc).unwrap();
        assert_eq!(direct.wall_time_s.to_bits(), via_lab.to_bits());
        // The faulted lab threads its plan into the IR.
        let faulty = small_lab().with_faults(FaultPlan::heavy(5)).unwrap();
        assert!(faulty.scenario_ir(&sc).unwrap().faults.is_some());
    }

    fn chaos_tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("coloc-lab-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn faulty_lab_injects_deterministically_and_keeps_baselines_clean() {
        let plan = small_plan();
        let clean = small_lab().collect(&plan).unwrap();
        let faulty = || small_lab().with_faults(FaultPlan::heavy(5)).unwrap();
        let a = faulty().collect(&plan).unwrap();
        let b = faulty().collect(&plan).unwrap();
        let lab = faulty();
        lab.collect(&plan).unwrap();
        assert!(
            lab.sweep_stats().faults_injected > 0,
            "heavy plan must fire on a {}-scenario sweep",
            plan.len()
        );
        // Deterministic: two labs with the same plan agree bit-for-bit.
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.actual_time_s.to_bits(), y.actual_time_s.to_bits());
        }
        // Different from the clean sweep somewhere.
        assert!(a
            .iter()
            .zip(&clean)
            .any(|(x, y)| x.actual_time_s.to_bits() != y.actual_time_s.to_bits()));
        // Baselines are measured below the fault layer: identical.
        assert_eq!(small_lab().baselines(), faulty().baselines());
        // Features come from baselines, so they stay finite even when the
        // measured time is NaN.
        for s in &a {
            assert!(s.features.iter().all(|f| f.is_finite()));
        }
    }

    #[test]
    fn invalid_fault_plan_is_rejected() {
        let plan = FaultPlan {
            nan_reading_rate: 1.5,
            ..FaultPlan::default()
        };
        match small_lab().with_faults(plan) {
            Err(ModelError::InvalidSpec(msg)) => assert!(msg.contains("nan"), "{msg}"),
            other => panic!("expected InvalidSpec, got {:?}", other.err()),
        }
    }

    #[test]
    fn crashed_collect_resumes_bit_identical() {
        let plan = small_plan();
        let scenarios = plan.scenarios();
        let reference = small_lab().collect(&plan).unwrap();

        let path = chaos_tmp("resume.json");
        let _ = std::fs::remove_file(&path);
        let mut cfg = CheckpointConfig::new(&path, 4);
        cfg.crash_after = Some(7);
        match small_lab().collect_resumable(&scenarios, &cfg) {
            Err(ModelError::Interrupted { completed }) => assert_eq!(completed, 7),
            other => panic!("expected Interrupted, got {:?}", other.err()),
        }
        // A fresh lab (simulating a restarted process) finishes the sweep.
        cfg.crash_after = None;
        let resumed = small_lab().collect_resumable(&scenarios, &cfg).unwrap();
        assert_eq!(resumed.len(), reference.len());
        for (a, b) in resumed.iter().zip(&reference) {
            assert_eq!(a.scenario.label(), b.scenario.label());
            assert_eq!(a.actual_time_s.to_bits(), b.actual_time_s.to_bits());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_from_a_different_lab_is_rejected() {
        let plan = small_plan();
        let scenarios = plan.scenarios();
        let path = chaos_tmp("mismatch.json");
        let _ = std::fs::remove_file(&path);
        let mut cfg = CheckpointConfig::new(&path, 4);
        cfg.crash_after = Some(5);
        let _ = small_lab().collect_resumable(&scenarios, &cfg);
        cfg.crash_after = None;
        // Same plan, different lab seed ⇒ different digest ⇒ rejected.
        let other = Lab::new(presets::xeon_e5649(), coloc_workloads::standard(), 43).unwrap();
        assert!(matches!(
            other.collect_resumable(&scenarios, &cfg),
            Err(ModelError::CheckpointMismatch { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_checkpoint_is_a_typed_error() {
        let plan = small_plan();
        let scenarios = plan.scenarios();
        let path = chaos_tmp("corrupt.json");
        std::fs::write(&path, b"{\"plan_digest\": 12, \"samples\": [{").unwrap();
        let cfg = CheckpointConfig::new(&path, 4);
        assert!(matches!(
            small_lab().collect_resumable(&scenarios, &cfg),
            Err(ModelError::CorruptArtifact { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }
}
