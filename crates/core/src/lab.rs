//! The measurement laboratory: machines + suite + deterministic seeds.
//!
//! [`Lab`] is the reproduction of the paper's testing environment (§IV):
//! a machine (simulated Xeon), a benchmark suite, and the measurement
//! procedures — baseline profiling through the PAPI-like counter layer,
//! co-location runs, featurization, and parallel sweep collection.

use crate::baseline::{AppBaseline, BaselineDb};
use crate::features::Feature;
use crate::plan::TrainingPlan;
use crate::sample::Sample;
use crate::scenario::Scenario;
use crate::{ModelError, Result};
use coloc_machine::{Machine, MachineSpec, RunCache, RunOptions, RunnerGroup};
use coloc_ml::rng::{derive_seed, derive_seed_str};
use coloc_perfmon::{EventSet, FlatProfiler};
use coloc_workloads::Benchmark;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Default measurement-noise σ: the paper's per-partition error spread is
/// "at most a quarter of a percent", consistent with sub-percent
/// run-to-run timing variation.
pub const DEFAULT_NOISE_SIGMA: f64 = 0.008;

/// Sweep-runtime telemetry: what the lab actually did, as opposed to what
/// it was asked for. Scenario counts and cache traffic diverge exactly
/// when memoization is paying off.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SweepStats {
    /// Scenario executions requested (cache hits included).
    pub scenarios_run: u64,
    /// Runs answered from the memo cache.
    pub cache_hits: u64,
    /// Runs that reached the engine.
    pub cache_misses: u64,
    /// Cache entries displaced by the capacity bound.
    pub cache_evictions: u64,
    /// Piecewise-constant segments actually simulated (misses only).
    pub segments_simulated: u64,
    /// Fixed-point solver iterations actually spent (misses only).
    pub fp_iterations: u64,
    /// Wall time spent inside parallel sweeps ([`Lab::collect`] /
    /// [`Lab::collect_scenarios`]), seconds.
    pub sweep_wall_time_s: f64,
}

impl std::fmt::Display for SweepStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} scenarios ({} cache hits, {} misses, {} evictions), \
             {} segments, {} fixed-point iters, {:.2}s sweep wall time",
            self.scenarios_run,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.segments_simulated,
            self.fp_iterations,
            self.sweep_wall_time_s,
        )
    }
}

/// A machine + suite measurement environment.
pub struct Lab {
    machine: Machine,
    suite: Vec<Benchmark>,
    seed: u64,
    noise_sigma: f64,
    /// Worker threads for sweeps; 0 = one per available CPU.
    threads: usize,
    baselines: OnceLock<BaselineDb>,
    run_cache: RunCache,
    segments_simulated: AtomicU64,
    fp_iterations: AtomicU64,
    scenarios_run: AtomicU64,
    /// Nanoseconds spent inside parallel sweeps.
    sweep_nanos: AtomicU64,
}

impl Lab {
    /// Create a lab for `spec` over `suite`, seeding all measurement noise
    /// from `seed`. Uses [`DEFAULT_NOISE_SIGMA`]; adjust with
    /// [`Lab::with_noise`].
    pub fn new(spec: MachineSpec, suite: Vec<Benchmark>, seed: u64) -> Lab {
        Lab {
            machine: Machine::new(spec),
            suite,
            seed,
            noise_sigma: DEFAULT_NOISE_SIGMA,
            threads: 0,
            baselines: OnceLock::new(),
            run_cache: RunCache::default(),
            segments_simulated: AtomicU64::new(0),
            fp_iterations: AtomicU64::new(0),
            scenarios_run: AtomicU64::new(0),
            sweep_nanos: AtomicU64::new(0),
        }
    }

    /// Override the measurement-noise σ (0 = noiseless). Resets cached
    /// baselines and invalidates the run cache: every cache key embeds
    /// the noise σ, so stale entries could never be returned, but dropping
    /// them keeps the capacity bound working for the new configuration.
    pub fn with_noise(mut self, sigma: f64) -> Lab {
        self.noise_sigma = sigma;
        self.baselines = OnceLock::new();
        self.run_cache.clear();
        self
    }

    /// Set the worker-thread count for parallel sweeps (0 = one per
    /// available CPU). Results are bit-identical at any setting; this only
    /// controls resources.
    pub fn with_threads(mut self, threads: usize) -> Lab {
        self.threads = threads;
        self
    }

    /// The simulated machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The benchmark suite.
    pub fn suite(&self) -> &[Benchmark] {
        &self.suite
    }

    /// The lab's base seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Look up a suite application by name.
    pub fn app(&self, name: &str) -> Result<&Benchmark> {
        self.suite
            .iter()
            .find(|b| b.name == name)
            .ok_or_else(|| ModelError::UnknownApp(name.to_string()))
    }

    fn run_options(&self, label: &str, stream: u64) -> RunOptions {
        RunOptions {
            pstate: 0,
            seed: derive_seed(derive_seed_str(self.seed, label), stream),
            noise_sigma: self.noise_sigma,
            ..RunOptions::default()
        }
    }

    /// Baseline measurements for every suite application: solo execution
    /// time at each P-state (through the flat profiler) plus one counter
    /// sample for the cache ratios. Computed once and cached.
    pub fn baselines(&self) -> &BaselineDb {
        self.baselines.get_or_init(|| {
            let profiler = FlatProfiler::new(&self.machine, EventSet::methodology());
            let mut db = BaselineDb::new();
            for b in &self.suite {
                let mut exec_time_s = Vec::new();
                let mut derived = None;
                for p in 0..self.machine.spec().num_pstates() {
                    let mut opts = self.run_options(b.name, 7_000 + p as u64);
                    opts.pstate = p;
                    let profile = profiler
                        .profile_solo(&b.app, &opts)
                        .expect("baseline run cannot fail for a validated suite");
                    exec_time_s.push(profile.wall_time_s);
                    if p == 0 {
                        derived = Some(profile.derived());
                    }
                }
                let d = derived.expect("at least one P-state");
                db.insert(AppBaseline {
                    name: b.name.to_string(),
                    exec_time_s,
                    memory_intensity: d.memory_intensity,
                    cm_ca: d.miss_ratio,
                    ca_ins: d.access_ratio,
                });
            }
            db
        })
    }

    /// Build the machine workload for a scenario.
    fn workload(&self, scenario: &Scenario) -> Result<Vec<RunnerGroup>> {
        let mut wl = vec![RunnerGroup::solo(self.app(&scenario.target)?.app.clone())];
        for (name, count) in scenario.co_groups() {
            wl.push(RunnerGroup {
                app: self.app(name)?.app.clone(),
                count,
            });
        }
        Ok(wl)
    }

    /// Execute one scenario and return the target's measured wall time.
    /// Identical `(workload, options)` pairs are answered from the run
    /// cache; determinism makes the memoized outcome bit-identical to a
    /// fresh simulation.
    pub fn run_scenario(&self, scenario: &Scenario) -> Result<f64> {
        let wl = self.workload(scenario)?;
        let mut opts = self.run_options(&scenario.label(), 1);
        opts.pstate = scenario.pstate;
        let (outcome, hit) = self.run_cache.run_with_status(&self.machine, &wl, &opts)?;
        self.scenarios_run.fetch_add(1, Ordering::Relaxed);
        if !hit {
            self.segments_simulated
                .fetch_add(outcome.segments as u64, Ordering::Relaxed);
            self.fp_iterations
                .fetch_add(outcome.fp_iterations, Ordering::Relaxed);
        }
        Ok(outcome.wall_time_s)
    }

    /// Snapshot the sweep-runtime telemetry accumulated so far.
    pub fn sweep_stats(&self) -> SweepStats {
        let cache = self.run_cache.stats();
        SweepStats {
            scenarios_run: self.scenarios_run.load(Ordering::Relaxed),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            segments_simulated: self.segments_simulated.load(Ordering::Relaxed),
            fp_iterations: self.fp_iterations.load(Ordering::Relaxed),
            sweep_wall_time_s: self.sweep_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
        }
    }

    /// Compute the full eight-feature vector for a scenario from baseline
    /// data only (paper Table I). Fails if the scenario's P-state exceeds
    /// the machine's table or an app is unknown.
    pub fn featurize(&self, scenario: &Scenario) -> Result<[f64; 8]> {
        let db = self.baselines();
        let target = db
            .get(&scenario.target)
            .ok_or_else(|| ModelError::UnknownApp(scenario.target.clone()))?;
        let base_time = target
            .time_at(scenario.pstate)
            .ok_or(ModelError::Machine(format!(
                "no baseline at P-state {}",
                scenario.pstate
            )))?;

        let mut co_mem = 0.0;
        let mut co_cm_ca = 0.0;
        let mut co_ca_ins = 0.0;
        for (name, count) in scenario.co_groups() {
            let b = db
                .get(name)
                .ok_or_else(|| ModelError::UnknownApp(name.to_string()))?;
            co_mem += count as f64 * b.memory_intensity;
            co_cm_ca += count as f64 * b.cm_ca;
            co_ca_ins += count as f64 * b.ca_ins;
        }

        let mut out = [0.0; 8];
        out[Feature::BaseExTime.index()] = base_time;
        out[Feature::NumCoApp.index()] = scenario.num_co_located() as f64;
        out[Feature::CoAppMem.index()] = co_mem;
        out[Feature::TargetMem.index()] = target.memory_intensity;
        out[Feature::CoAppCmCa.index()] = co_cm_ca;
        out[Feature::CoAppCaIns.index()] = co_ca_ins;
        out[Feature::TargetCmCa.index()] = target.cm_ca;
        out[Feature::TargetCaIns.index()] = target.ca_ins;
        Ok(out)
    }

    /// Run and featurize one scenario.
    pub fn sample(&self, scenario: &Scenario) -> Result<Sample> {
        let features = self.featurize(scenario)?;
        let actual_time_s = self.run_scenario(scenario)?;
        Ok(Sample {
            scenario: scenario.clone(),
            features,
            actual_time_s,
        })
    }

    /// Execute a whole training plan, in parallel across scenarios.
    /// Results are in plan order regardless of thread scheduling.
    pub fn collect(&self, plan: &TrainingPlan) -> Result<Vec<Sample>> {
        let scenarios = plan.scenarios();
        self.collect_scenarios(&scenarios)
    }

    /// Execute an explicit scenario list, in parallel, preserving order.
    ///
    /// Workers pull scenarios from a shared work-stealing cursor
    /// ([`coloc_ml::parallel::run_indexed`]): scenario cost varies by an
    /// order of magnitude with the workload mix, so static chunking would
    /// strand the expensive tail on one thread. Results come back in plan
    /// order and are bit-identical at any thread count.
    pub fn collect_scenarios(&self, scenarios: &[Scenario]) -> Result<Vec<Sample>> {
        // Force baselines before fanning out (OnceLock would serialize the
        // first computation anyway; this keeps the timing predictable).
        self.baselines();

        let start = Instant::now();
        let results = coloc_ml::parallel::run_indexed(scenarios.len(), self.threads, |i| {
            self.sample(&scenarios[i])
        });
        self.sweep_nanos
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        results.into_iter().collect()
    }

    /// The paper's default training plan for this lab: all suite apps as
    /// targets, the four class-representative co-runners, all P-states,
    /// counts `1..=cores−1` (Table V).
    pub fn paper_plan(&self) -> TrainingPlan {
        TrainingPlan::paper_shape(
            self.machine.spec().cores,
            self.machine.spec().num_pstates(),
            self.suite.iter().map(|b| b.name.to_string()).collect(),
            coloc_workloads::suite::training_co_runners()
                .iter()
                .map(|b| b.name.to_string())
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coloc_machine::presets;

    fn small_lab() -> Lab {
        Lab::new(presets::xeon_e5649(), coloc_workloads::standard(), 42)
    }

    #[test]
    fn baselines_cover_suite_and_pstates() {
        let lab = small_lab();
        let db = lab.baselines();
        assert_eq!(db.len(), 11);
        let cg = db.get("cg").unwrap();
        assert_eq!(cg.exec_time_s.len(), 6);
        // Times increase as frequency drops.
        for w in cg.exec_time_s.windows(2) {
            assert!(w[1] > w[0] * 0.98, "{:?}", cg.exec_time_s);
        }
        assert!(cg.memory_intensity > 5e-3);
        let ep = db.get("ep").unwrap();
        assert!(ep.memory_intensity < 2e-5);
    }

    #[test]
    fn baselines_are_cached_and_deterministic() {
        let lab = small_lab();
        let a = lab.baselines().clone();
        let b = lab.baselines().clone();
        assert_eq!(a, b);
        let lab2 = small_lab();
        assert_eq!(a, lab2.baselines().clone());
    }

    #[test]
    fn featurize_matches_table1_semantics() {
        let lab = small_lab();
        let sc = Scenario::homogeneous("canneal", "cg", 3, 2);
        let f = lab.featurize(&sc).unwrap();
        let db = lab.baselines();
        let canneal = db.get("canneal").unwrap();
        let cg = db.get("cg").unwrap();
        assert_eq!(f[Feature::BaseExTime.index()], canneal.exec_time_s[2]);
        assert_eq!(f[Feature::NumCoApp.index()], 3.0);
        assert!((f[Feature::CoAppMem.index()] - 3.0 * cg.memory_intensity).abs() < 1e-12);
        assert_eq!(f[Feature::TargetMem.index()], canneal.memory_intensity);
        assert!((f[Feature::CoAppCmCa.index()] - 3.0 * cg.cm_ca).abs() < 1e-12);
        assert_eq!(f[Feature::TargetCaIns.index()], canneal.ca_ins);
    }

    #[test]
    fn unknown_app_and_bad_pstate_error() {
        let lab = small_lab();
        assert!(matches!(
            lab.featurize(&Scenario::solo("doom", 0)),
            Err(ModelError::UnknownApp(_))
        ));
        assert!(lab.featurize(&Scenario::solo("cg", 17)).is_err());
        assert!(matches!(
            lab.run_scenario(&Scenario::homogeneous("cg", "doom", 1, 0)),
            Err(ModelError::UnknownApp(_))
        ));
    }

    #[test]
    fn co_location_sample_shows_degradation() {
        let lab = small_lab();
        let solo = lab.run_scenario(&Scenario::solo("canneal", 0)).unwrap();
        let crowded = lab
            .run_scenario(&Scenario::homogeneous("canneal", "cg", 5, 0))
            .unwrap();
        assert!(crowded > solo * 1.03, "crowded {crowded} vs solo {solo}");
    }

    #[test]
    fn collect_preserves_plan_order_and_parallel_determinism() {
        let lab = small_lab();
        let plan = TrainingPlan {
            pstates: vec![0],
            targets: vec!["canneal".into(), "ep".into()],
            co_runners: vec!["cg".into()],
            counts: vec![1, 3],
        };
        let s1 = lab.collect(&plan).unwrap();
        let s2 = lab.collect(&plan).unwrap();
        assert_eq!(s1.len(), 4);
        assert_eq!(s1[0].scenario.label(), "canneal+1x cg @P0");
        for (a, b) in s1.iter().zip(&s2) {
            assert_eq!(a.actual_time_s, b.actual_time_s);
            assert_eq!(a.features, b.features);
        }
    }

    #[test]
    fn paper_plan_matches_machine_shape() {
        let lab = small_lab();
        let plan = lab.paper_plan();
        assert_eq!(plan.len(), 6 * 11 * 4 * 5);
        let lab12 = Lab::new(presets::xeon_e5_2697v2(), coloc_workloads::standard(), 1);
        assert_eq!(lab12.paper_plan().len(), 6 * 11 * 4 * 11);
    }

    #[test]
    fn noiseless_lab_is_exact() {
        let lab = small_lab().with_noise(0.0);
        let a = lab.run_scenario(&Scenario::solo("ep", 0)).unwrap();
        let b = lab.run_scenario(&Scenario::solo("ep", 0)).unwrap();
        assert_eq!(a, b);
    }

    fn small_plan() -> TrainingPlan {
        TrainingPlan {
            pstates: vec![0, 3],
            targets: vec!["canneal".into(), "ep".into(), "cg".into()],
            co_runners: vec!["cg".into(), "ep".into()],
            counts: vec![1, 3, 5],
        }
    }

    #[test]
    fn collect_is_bit_identical_across_thread_counts() {
        let plan = small_plan();
        let reference = small_lab().with_threads(1).collect(&plan).unwrap();
        for threads in [2, 8] {
            let lab = small_lab().with_threads(threads);
            let got = lab.collect(&plan).unwrap();
            assert_eq!(got.len(), reference.len());
            for (a, b) in got.iter().zip(&reference) {
                assert_eq!(a.scenario.label(), b.scenario.label());
                assert_eq!(a.actual_time_s.to_bits(), b.actual_time_s.to_bits());
                for (fa, fb) in a.features.iter().zip(b.features.iter()) {
                    assert_eq!(fa.to_bits(), fb.to_bits());
                }
            }
        }
    }

    #[test]
    fn repeat_collect_is_served_from_cache() {
        let lab = small_lab().with_threads(2);
        let plan = small_plan();
        let cold = lab.collect(&plan).unwrap();
        let after_cold = lab.sweep_stats();
        assert_eq!(after_cold.scenarios_run as usize, plan.len());
        assert!(after_cold.cache_misses >= plan.len() as u64);
        assert!(after_cold.segments_simulated > 0);
        assert!(after_cold.fp_iterations > 0);
        assert!(after_cold.sweep_wall_time_s > 0.0);

        let warm = lab.collect(&plan).unwrap();
        let after_warm = lab.sweep_stats();
        // The warm pass must be answered entirely by the memo cache:
        // misses, segments and fixed-point work all stay flat.
        assert_eq!(after_warm.cache_misses, after_cold.cache_misses);
        assert_eq!(after_warm.segments_simulated, after_cold.segments_simulated);
        assert_eq!(after_warm.fp_iterations, after_cold.fp_iterations);
        assert!(after_warm.cache_hits >= after_cold.cache_hits + plan.len() as u64);
        for (a, b) in cold.iter().zip(&warm) {
            assert_eq!(a.actual_time_s.to_bits(), b.actual_time_s.to_bits());
        }
    }

    #[test]
    fn with_noise_resets_the_run_cache() {
        let lab = small_lab();
        let sc = Scenario::solo("cg", 0);
        let a = lab.run_scenario(&sc).unwrap();
        let lab = lab.with_noise(0.0);
        assert_eq!(
            lab.sweep_stats().cache_misses,
            1,
            "clear drops entries, not counters"
        );
        let b = lab.run_scenario(&sc).unwrap();
        assert_ne!(
            a, b,
            "noiseless rerun must not be served from the noisy cache"
        );
    }

    #[test]
    fn sweep_stats_display_is_readable() {
        let s = SweepStats {
            scenarios_run: 10,
            cache_hits: 4,
            cache_misses: 6,
            cache_evictions: 0,
            segments_simulated: 120,
            fp_iterations: 900,
            sweep_wall_time_s: 1.25,
        };
        let text = format!("{s}");
        assert!(text.contains("10 scenarios"), "{text}");
        assert!(text.contains("4 cache hits"), "{text}");
        assert!(text.contains("1.25s"), "{text}");
    }
}
