//! The model registry: one canonical pipeline from training to serving.
//!
//! Historically three layers trained and loaded predictors through their
//! own ad-hoc paths (the CLI's `train`, serve's self-train fallback,
//! placement's inline estimator fit), each with its own feature
//! construction, error handling, and no shared artifact format. This
//! module replaces all of them: a [`ModelRegistry`] is the **only** way
//! any layer trains, persists, loads, or resolves a predictor, and what
//! it produces is a [`ModelArtifact`] — a schema-versioned, immutable,
//! digest-addressed serialization of the trained [`Predictor`] together
//! with its full provenance:
//!
//! - the [`TrainingPlan`] (or the plan reconstructed from a sample file),
//! - the requested [`ModelKind`] / [`FeatureSet`] / seed / robust flag,
//! - the machine-spec digest it was trained against, and
//! - the training-data digest (the lab's `ScenarioIr` digest fold for
//!   plan-trained models, a bit-exact sample fold for file-trained ones).
//!
//! [`ModelArtifact::digest`] is a pure function of those serialized
//! fields, so two independent processes that train the same plan on the
//! same lab resolve the **same digest** — the property serve's hot
//! reload, placement's estimator, and the CLI all rely on to agree on
//! model identity — and a loaded artifact re-digests to the digest it
//! was saved under.
//!
//! Failures are never cached: [`ModelRegistry::resolve`] memoizes only
//! successful artifacts (by digest), so a transient training or I/O
//! error is retryable by construction.

use crate::features::FeatureSet;
use crate::lab::Lab;
use crate::persist;
use crate::plan::TrainingPlan;
use crate::predictor::{ModelKind, Predictor};
use crate::robust::{train_robust, TrainPolicy, TrainingReport};
use crate::sample::Sample;
use crate::{ColocError, Result};
use coloc_machine::{IrWriter, MachineSpec};
use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// On-disk artifact schema version. Bump on any change to the serialized
/// shape of [`ModelArtifact`]; loading a mismatched version is a
/// [`ColocError::CorruptArtifact`] naming both versions.
pub const MODEL_SCHEMA_VERSION: u32 = 1;

/// Machine label recorded when a model is trained from a sample file
/// with no lab attached (the CLI `train` path).
pub const MACHINE_UNKNOWN: &str = "samples";

/// What to train: the provenance half of a [`ModelArtifact`], fully
/// serializable and digestable.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ModelSpec {
    /// Requested learner kind (robust training may fall back to linear;
    /// the spec records the request, the predictor records the outcome).
    pub kind: ModelKind,
    /// Feature set the model was trained over.
    pub set: FeatureSet,
    /// The training sweep (for sample-file training, the plan
    /// reconstructed from the samples' scenarios).
    pub plan: TrainingPlan,
    /// Training seed.
    pub seed: u64,
    /// True when trained through the robust ladder
    /// ([`crate::robust::train_robust`]).
    pub robust: bool,
}

/// A trained, digest-addressed model artifact: predictor + provenance.
/// Deliberately not `Clone` — artifacts are immutable and shared by
/// [`Arc`], which is how serve's epoch swap stays drain-free.
#[derive(serde::Serialize, serde::Deserialize)]
pub struct ModelArtifact {
    /// Serialization schema version ([`MODEL_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Machine-spec name the training data came from, or
    /// [`MACHINE_UNKNOWN`] for sample-file training.
    pub machine: String,
    /// Digest of the machine spec ([`machine_spec_digest`]); 0 when the
    /// machine is unknown.
    pub machine_digest: u64,
    /// What was trained.
    pub spec: ModelSpec,
    /// Digest of the exact training data: [`Lab::plan_digest`] over the
    /// plan's scenarios for lab training, [`samples_digest`] for
    /// sample-file training.
    pub data_digest: u64,
    /// Number of training samples.
    pub samples: usize,
    /// Final training loss, when the learner reports one.
    pub train_loss: Option<f64>,
    /// The trained predictor.
    pub predictor: Predictor,
}

/// The digest every artifact identity reduces to: a 128-bit IrWriter fold
/// over provenance only — never the learned weights, which are a
/// deterministic function of the provenance. Shared by
/// [`ModelArtifact::digest`] and [`ModelRegistry::request_digest`] so a
/// request's address can be computed before anything is trained.
fn provenance_digest(
    machine: &str,
    machine_digest: u64,
    spec: &ModelSpec,
    data_digest: u64,
) -> u128 {
    let mut d = IrWriter::new();
    d.u64(MODEL_SCHEMA_VERSION as u64);
    d.str(machine);
    d.u64(machine_digest);
    d.str(spec.kind.label());
    d.str(spec.set.label());
    d.usize(spec.plan.pstates.len());
    for &p in &spec.plan.pstates {
        d.usize(p);
    }
    d.usize(spec.plan.targets.len());
    for t in &spec.plan.targets {
        d.str(t);
    }
    d.usize(spec.plan.co_runners.len());
    for c in &spec.plan.co_runners {
        d.str(c);
    }
    d.usize(spec.plan.counts.len());
    for &c in &spec.plan.counts {
        d.usize(c);
    }
    d.u64(spec.seed);
    d.byte(spec.robust as u8);
    d.u64(data_digest);
    d.finish()
}

impl std::fmt::Debug for ModelArtifact {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelArtifact")
            .field("schema_version", &self.schema_version)
            .field("machine", &self.machine)
            .field("machine_digest", &self.machine_digest)
            .field("spec", &self.spec)
            .field("data_digest", &self.data_digest)
            .field("samples", &self.samples)
            .field("train_loss", &self.train_loss)
            .field("digest", &format_args!("{:032x}", self.digest()))
            .finish_non_exhaustive()
    }
}

impl ModelArtifact {
    /// The artifact's identity: a 128-bit digest over every serialized
    /// provenance field (never the learned weights — they are a
    /// deterministic function of the provenance). Recomputable from a
    /// loaded artifact, identical across processes for identical
    /// provenance.
    pub fn digest(&self) -> u128 {
        provenance_digest(
            &self.machine,
            self.machine_digest,
            &self.spec,
            self.data_digest,
        )
    }

    /// [`ModelArtifact::digest`] as the canonical 32-hex-digit string the
    /// wire protocol and telemetry report.
    pub fn digest_hex(&self) -> String {
        format!("{:032x}", self.digest())
    }
}

/// 64-bit digest of a machine spec's model-relevant identity (name,
/// topology, LLC, P-state table, DRAM parameters).
pub fn machine_spec_digest(spec: &MachineSpec) -> u64 {
    let mut d = IrWriter::new();
    d.str(&spec.name);
    d.usize(spec.cores);
    d.u64(spec.llc_bytes);
    d.usize(spec.llc_ways);
    d.usize(spec.pstates_ghz.len());
    for &g in &spec.pstates_ghz {
        d.f64(g);
    }
    d.f64(spec.dram.peak_bw_bytes_per_sec);
    d.f64(spec.dram.idle_latency_ns);
    d.f64(spec.dram.queue_latency_ns);
    d.f64(spec.dram.max_queue_ns);
    d.f64(spec.dram.bank_penalty_ns);
    d.usize(spec.dram.banks);
    d.finish64()
}

/// Bit-exact 64-bit fold of a training sample set: every scenario label,
/// every feature bit pattern, every measured time.
pub fn samples_digest(samples: &[Sample]) -> u64 {
    let mut d = IrWriter::new();
    d.usize(samples.len());
    for s in samples {
        d.str(&s.scenario.label());
        for &f in &s.features {
            d.f64(f);
        }
        d.f64(s.actual_time_s);
    }
    d.finish64()
}

/// Reconstruct a best-effort [`TrainingPlan`] from a sample set's
/// scenarios (first-seen order, deterministic): the provenance recorded
/// when training from a file instead of a live lab.
pub fn plan_from_samples(samples: &[Sample]) -> TrainingPlan {
    let mut plan = TrainingPlan {
        pstates: Vec::new(),
        targets: Vec::new(),
        co_runners: Vec::new(),
        counts: Vec::new(),
    };
    for s in samples {
        let sc = &s.scenario;
        if !plan.pstates.contains(&sc.pstate) {
            plan.pstates.push(sc.pstate);
        }
        if !plan.targets.contains(&sc.target) {
            plan.targets.push(sc.target.clone());
        }
        for (name, count) in sc.co_groups() {
            if !plan.co_runners.iter().any(|c| c == name) {
                plan.co_runners.push(name.to_string());
            }
            if !plan.counts.contains(&count) {
                plan.counts.push(count);
            }
        }
    }
    plan
}

/// A training request: what the caller wants trained, and how hard to
/// try. `policy: Some(_)` routes through the robust ladder; `None` is a
/// single plain fit. The request's digest-relevant parts become the
/// artifact's [`ModelSpec`].
#[derive(Clone, Debug)]
pub struct TrainRequest {
    /// Learner kind.
    pub kind: ModelKind,
    /// Feature set.
    pub set: FeatureSet,
    /// Training sweep.
    pub plan: TrainingPlan,
    /// Training seed (attempt 0 of the robust ladder uses it unchanged,
    /// so plain and robust training are bit-compatible on clean data).
    pub seed: u64,
    /// Robust-training policy, or `None` for a plain fit.
    pub policy: Option<TrainPolicy>,
}

/// A freshly trained model: the immutable artifact plus the robust
/// ladder's report when one was produced.
pub struct TrainedModel {
    /// The artifact.
    pub artifact: Arc<ModelArtifact>,
    /// Robust-training report (`None` for plain fits).
    pub report: Option<TrainingReport>,
}

/// The registry: trains, persists, loads, and resolves model artifacts.
/// Successful artifacts are memoized by digest; failures are never
/// cached, so a failed train or load is always retryable.
#[derive(Default)]
pub struct ModelRegistry {
    cache: Mutex<HashMap<u128, Arc<ModelArtifact>>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> ModelRegistry {
        ModelRegistry::default()
    }

    fn fit(
        kind: ModelKind,
        set: FeatureSet,
        samples: &[Sample],
        seed: u64,
        policy: Option<&TrainPolicy>,
    ) -> Result<(Predictor, Option<TrainingReport>)> {
        match policy {
            Some(p) => train_robust(kind, set, samples, seed, p).map(|(m, r)| (m, Some(r))),
            None => Predictor::train(kind, set, samples, seed).map(|m| (m, None)),
        }
    }

    /// Collect `req.plan` on `lab` and train. Full provenance: the lab's
    /// machine digest and the exact `ScenarioIr` digest fold of the
    /// training sweep.
    pub fn train(&self, lab: &Lab, req: &TrainRequest) -> Result<TrainedModel> {
        let samples = lab.collect(&req.plan)?;
        let (predictor, report) =
            Self::fit(req.kind, req.set, &samples, req.seed, req.policy.as_ref())?;
        let spec = lab.machine().spec();
        let artifact = Arc::new(ModelArtifact {
            schema_version: MODEL_SCHEMA_VERSION,
            machine: spec.name.clone(),
            machine_digest: machine_spec_digest(spec),
            spec: ModelSpec {
                kind: req.kind,
                set: req.set,
                plan: req.plan.clone(),
                seed: req.seed,
                robust: req.policy.is_some(),
            },
            data_digest: lab.plan_digest(&req.plan.scenarios()),
            samples: samples.len(),
            train_loss: predictor.train_loss(),
            predictor,
        });
        self.remember(&artifact);
        Ok(TrainedModel { artifact, report })
    }

    /// Train from a pre-collected sample set (the CLI `train` path): the
    /// plan provenance is reconstructed from the samples' scenarios and
    /// the data digest is a bit-exact fold of the samples themselves.
    pub fn train_from_samples(
        &self,
        samples: &[Sample],
        kind: ModelKind,
        set: FeatureSet,
        seed: u64,
        policy: Option<&TrainPolicy>,
    ) -> Result<TrainedModel> {
        let (predictor, report) = Self::fit(kind, set, samples, seed, policy)?;
        let artifact = Arc::new(ModelArtifact {
            schema_version: MODEL_SCHEMA_VERSION,
            machine: MACHINE_UNKNOWN.to_string(),
            machine_digest: 0,
            spec: ModelSpec {
                kind,
                set,
                plan: plan_from_samples(samples),
                seed,
                robust: policy.is_some(),
            },
            data_digest: samples_digest(samples),
            samples: samples.len(),
            train_loss: predictor.train_loss(),
            predictor,
        });
        self.remember(&artifact);
        Ok(TrainedModel { artifact, report })
    }

    /// The digest [`ModelRegistry::resolve`] would address for this
    /// request — computable without running a single training scenario
    /// (the data digest folds scenario IRs, not measurements).
    pub fn request_digest(&self, lab: &Lab, req: &TrainRequest) -> u128 {
        let spec = lab.machine().spec();
        let model_spec = ModelSpec {
            kind: req.kind,
            set: req.set,
            plan: req.plan.clone(),
            seed: req.seed,
            robust: req.policy.is_some(),
        };
        provenance_digest(
            &spec.name,
            machine_spec_digest(spec),
            &model_spec,
            lab.plan_digest(&req.plan.scenarios()),
        )
    }

    /// Resolve a request to its artifact: return the memoized artifact
    /// when one with the same digest exists, train otherwise. Errors are
    /// not memoized — a transient failure retrains on the next call.
    pub fn resolve(&self, lab: &Lab, req: &TrainRequest) -> Result<Arc<ModelArtifact>> {
        let digest = self.request_digest(lab, req);
        if let Some(hit) = self.cache.lock().expect("registry cache lock").get(&digest) {
            return Ok(hit.clone());
        }
        let trained = self.train(lab, req)?;
        debug_assert_eq!(trained.artifact.digest(), digest);
        Ok(trained.artifact)
    }

    /// Persist an artifact (atomically: temp file + rename).
    pub fn save(&self, artifact: &ModelArtifact, path: impl AsRef<Path>) -> Result<()> {
        persist::save_json_atomic(artifact, path)
    }

    /// Load an artifact saved with [`ModelRegistry::save`]. I/O and parse
    /// failures carry the path ([`ColocError::ArtifactIo`] /
    /// [`ColocError::CorruptArtifact`]); a schema-version mismatch is a
    /// [`ColocError::CorruptArtifact`] naming both versions. The loaded
    /// artifact joins the digest cache.
    pub fn load(&self, path: impl AsRef<Path>) -> Result<Arc<ModelArtifact>> {
        let path = path.as_ref();
        let artifact: ModelArtifact = persist::load_json(path)?;
        if artifact.schema_version != MODEL_SCHEMA_VERSION {
            return Err(ColocError::CorruptArtifact {
                path: path.display().to_string(),
                detail: format!(
                    "artifact schema version {} (this build reads version {})",
                    artifact.schema_version, MODEL_SCHEMA_VERSION
                ),
            });
        }
        let artifact = Arc::new(artifact);
        self.remember(&artifact);
        Ok(artifact)
    }

    fn remember(&self, artifact: &Arc<ModelArtifact>) {
        self.cache
            .lock()
            .expect("registry cache lock")
            .insert(artifact.digest(), artifact.clone());
    }

    /// Number of distinct artifacts memoized.
    pub fn cached(&self) -> usize {
        self.cache.lock().expect("registry cache lock").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use coloc_machine::presets;

    fn lab() -> Lab {
        Lab::new(presets::xeon_e5649(), coloc_workloads::standard(), 17)
            .unwrap()
            .with_threads(4)
    }

    fn small_request() -> TrainRequest {
        TrainRequest {
            kind: ModelKind::Linear,
            set: FeatureSet::F,
            plan: TrainingPlan {
                pstates: vec![0],
                targets: vec!["cg".into(), "ep".into(), "canneal".into()],
                co_runners: vec!["cg".into(), "blackscholes".into()],
                counts: vec![1, 2, 3],
            },
            seed: 1,
            policy: None,
        }
    }

    #[test]
    fn resolve_memoizes_by_digest_and_two_processes_agree() {
        let lab = lab();
        let req = small_request();
        let r1 = ModelRegistry::new();
        let a = r1.resolve(&lab, &req).unwrap();
        let b = r1.resolve(&lab, &req).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second resolve must hit the cache");
        assert_eq!(r1.cached(), 1);

        // An independent registry (a different process, in effect)
        // resolves the same request to the same digest — model identity
        // is a pure function of provenance.
        let r2 = ModelRegistry::new();
        let c = r2.resolve(&lab, &req).unwrap();
        assert_eq!(a.digest(), c.digest());
        assert_eq!(a.digest(), r1.request_digest(&lab, &req));
    }

    #[test]
    fn digest_separates_every_provenance_field() {
        let lab = lab();
        let r = ModelRegistry::new();
        let base = r.request_digest(&lab, &small_request());
        let mut req = small_request();
        req.seed = 2;
        assert_ne!(r.request_digest(&lab, &req), base, "seed");
        let mut req = small_request();
        req.kind = ModelKind::QuadraticLinear;
        assert_ne!(r.request_digest(&lab, &req), base, "kind");
        let mut req = small_request();
        req.set = FeatureSet::A;
        assert_ne!(r.request_digest(&lab, &req), base, "set");
        let mut req = small_request();
        req.policy = Some(TrainPolicy::default());
        assert_ne!(r.request_digest(&lab, &req), base, "robust flag");
        let mut req = small_request();
        req.plan.counts = vec![1];
        assert_ne!(r.request_digest(&lab, &req), base, "plan");
    }

    #[test]
    fn save_load_round_trip_preserves_digest_and_predictions() {
        let lab = lab();
        let r = ModelRegistry::new();
        let trained = r.train(&lab, &small_request()).unwrap();
        let dir = std::env::temp_dir().join(format!("coloc-registry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round_trip.model.json");
        r.save(&trained.artifact, &path).unwrap();

        let fresh = ModelRegistry::new();
        let loaded = fresh.load(&path).unwrap();
        assert_eq!(loaded.digest(), trained.artifact.digest());
        assert_eq!(loaded.spec, trained.artifact.spec);
        let f = lab
            .featurize(&Scenario {
                target: "cg".into(),
                co_located: vec![("blackscholes".into(), 2)],
                pstate: 0,
            })
            .unwrap();
        assert_eq!(
            loaded.predictor.predict(&f).to_bits(),
            trained.artifact.predictor.predict(&f).to_bits()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_wrong_schema_version_with_path() {
        let lab = lab();
        let r = ModelRegistry::new();
        let trained = r.train(&lab, &small_request()).unwrap();
        let dir = std::env::temp_dir().join(format!("coloc-registry-v-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wrong_schema.model.json");
        r.save(&trained.artifact, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let bumped = text.replacen(
            &format!("\"schema_version\": {MODEL_SCHEMA_VERSION}"),
            &format!("\"schema_version\": {}", MODEL_SCHEMA_VERSION + 1),
            1,
        );
        assert_ne!(text, bumped, "fixture must actually change the version");
        std::fs::write(&path, bumped).unwrap();
        match r.load(&path) {
            Err(ColocError::CorruptArtifact { path: p, detail }) => {
                assert!(p.ends_with("wrong_schema.model.json"), "{p}");
                assert!(detail.contains("schema version"), "{detail}");
            }
            other => panic!("expected CorruptArtifact, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_failure_is_not_cached_and_is_retryable() {
        let r = ModelRegistry::new();
        let dir = std::env::temp_dir().join(format!("coloc-registry-r-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("late.model.json");
        std::fs::remove_file(&path).ok();

        let err = r.load(&path).unwrap_err();
        assert!(
            matches!(err, ColocError::ArtifactIo { .. }),
            "missing file must be a typed I/O error: {err:?}"
        );
        assert_eq!(r.cached(), 0, "failures are never memoized");

        // The artifact appears later; the same registry now succeeds.
        let lab = lab();
        let trained = r.train(&lab, &small_request()).unwrap();
        r.save(&trained.artifact, &path).unwrap();
        let loaded = r.load(&path).unwrap();
        assert_eq!(loaded.digest(), trained.artifact.digest());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sample_trained_artifacts_reconstruct_plan_provenance() {
        let lab = lab();
        let samples = lab.collect(&small_request().plan).unwrap();
        let r = ModelRegistry::new();
        let trained = r
            .train_from_samples(&samples, ModelKind::Linear, FeatureSet::F, 1, None)
            .unwrap();
        let a = &trained.artifact;
        assert_eq!(a.machine, MACHINE_UNKNOWN);
        assert_eq!(a.machine_digest, 0);
        assert_eq!(a.spec.plan.pstates, vec![0]);
        assert_eq!(
            a.spec.plan.targets,
            vec!["cg".to_string(), "ep".to_string(), "canneal".to_string()]
        );
        assert_eq!(a.data_digest, samples_digest(&samples));
        // Same samples → same digest; any sample perturbation changes it.
        let again = r
            .train_from_samples(&samples, ModelKind::Linear, FeatureSet::F, 1, None)
            .unwrap();
        assert_eq!(a.digest(), again.artifact.digest());
        let mut tweaked = samples.clone();
        tweaked[0].actual_time_s *= 1.0 + 1e-9;
        let other = r
            .train_from_samples(&tweaked, ModelKind::Linear, FeatureSet::F, 1, None)
            .unwrap();
        assert_ne!(a.digest(), other.artifact.digest());
    }

    #[test]
    fn robust_and_plain_linear_training_agree_bitwise() {
        // Attempt 0 of the robust ladder uses the caller's seed unchanged,
        // so on clean data the two pipelines produce the same weights —
        // the property that let serve and the CLI move onto the registry
        // without changing a single prediction.
        let lab = lab();
        let r = ModelRegistry::new();
        let plain = r.train(&lab, &small_request()).unwrap();
        let mut robust_req = small_request();
        robust_req.policy = Some(TrainPolicy::default());
        let robust = r.train(&lab, &robust_req).unwrap();
        assert_ne!(
            plain.artifact.digest(),
            robust.artifact.digest(),
            "provenance records the pipeline"
        );
        let f = lab.featurize(&Scenario::solo("cg", 0)).unwrap();
        assert_eq!(
            plain.artifact.predictor.predict(&f).to_bits(),
            robust.artifact.predictor.predict(&f).to_bits()
        );
        assert!(robust.report.is_some());
        assert!(plain.report.is_none());
    }
}
