//! Persistence: save trained models and baseline databases to JSON.
//!
//! The methodology's deployment story is train-once-predict-forever: a
//! resource manager trains on one sweep and then only ever featurizes and
//! predicts. This module serializes the artifacts that survive between
//! those stages — baseline databases, collected samples, and trained
//! predictors — so deployment needs neither the simulator nor retraining.

use crate::baseline::BaselineDb;
use crate::predictor::Predictor;
use crate::sample::Sample;
use crate::{ColocError, Result};
use std::path::Path;

fn io_err(path: &Path, e: impl std::fmt::Display) -> ColocError {
    ColocError::ArtifactIo {
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

fn corrupt_err(path: &Path, e: impl std::fmt::Display) -> ColocError {
    ColocError::CorruptArtifact {
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

/// Serialize any supported artifact to pretty JSON at `path`.
pub fn save_json<T: serde::Serialize>(value: &T, path: impl AsRef<Path>) -> Result<()> {
    let path = path.as_ref();
    let bytes = serde_json::to_vec_pretty(value).map_err(|e| io_err(path, e))?;
    std::fs::write(path, bytes).map_err(|e| io_err(path, e))
}

/// Like [`save_json`], but crash-safe: writes to a sibling temp file and
/// renames into place, so a process dying mid-write can never leave a
/// truncated artifact at `path` — the invariant sweep checkpoints rely on.
pub fn save_json_atomic<T: serde::Serialize>(value: &T, path: impl AsRef<Path>) -> Result<()> {
    let path = path.as_ref();
    let bytes = serde_json::to_vec_pretty(value).map_err(|e| io_err(path, e))?;
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, bytes).map_err(|e| io_err(&tmp, e))?;
    std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))
}

/// Load an artifact previously written by [`save_json`].
///
/// I/O failures (missing file, permissions) come back as
/// [`ColocError::ArtifactIo`]; a file that reads fine but does not parse —
/// truncated, hand-edited, or written by a different type — comes back as
/// [`ColocError::CorruptArtifact`]. Both carry the path.
pub fn load_json<T: serde::de::DeserializeOwned>(path: impl AsRef<Path>) -> Result<T> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
    serde_json::from_slice(&bytes).map_err(|e| corrupt_err(path, e))
}

impl Predictor {
    /// Save this trained predictor to JSON.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        save_json(self, path)
    }

    /// Load a predictor saved with [`Predictor::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<Predictor> {
        load_json(path)
    }
}

impl BaselineDb {
    /// Save the baseline database to JSON.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        save_json(self, path)
    }

    /// Load a baseline database saved with [`BaselineDb::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<BaselineDb> {
        load_json(path)
    }
}

/// Save a collected sample set to JSON.
pub fn save_samples(samples: &[Sample], path: impl AsRef<Path>) -> Result<()> {
    save_json(&samples, path)
}

/// Load a sample set saved with [`save_samples`].
pub fn load_samples(path: impl AsRef<Path>) -> Result<Vec<Sample>> {
    load_json(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::AppBaseline;
    use crate::features::FeatureSet;
    use crate::predictor::ModelKind;
    use crate::scenario::Scenario;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("coloc-persist-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn samples(n: usize) -> Vec<Sample> {
        (0..n)
            .map(|i| Sample {
                scenario: Scenario::homogeneous("t", "c", i % 5, 0),
                features: [
                    100.0 + i as f64,
                    (i % 5) as f64,
                    (i % 5) as f64 * 0.01,
                    1e-3,
                    (i % 5) as f64 * 0.3,
                    (i % 5) as f64 * 0.02,
                    0.1,
                    0.02,
                ],
                actual_time_s: (100.0 + i as f64) * (1.0 + (i % 5) as f64 * 0.05),
            })
            .collect()
    }

    #[test]
    fn predictor_roundtrip_preserves_predictions() {
        for kind in ModelKind::EXTENDED {
            let s = samples(80);
            let p = Predictor::train(kind, FeatureSet::D, &s, 3).unwrap();
            let path = tmp(&format!("pred_{}.json", kind.label()));
            p.save(&path).unwrap();
            let q = Predictor::load(&path).unwrap();
            assert_eq!(q.kind(), kind);
            assert_eq!(q.feature_set(), FeatureSet::D);
            for sample in &s[..10] {
                assert_eq!(p.predict(&sample.features), q.predict(&sample.features));
            }
        }
    }

    #[test]
    fn baseline_db_roundtrip() {
        let mut db = BaselineDb::new();
        db.insert(AppBaseline {
            name: "cg".into(),
            exec_time_s: vec![100.0, 120.0, 140.0],
            memory_intensity: 1.8e-2,
            cm_ca: 0.5,
            ca_ins: 0.036,
        });
        let path = tmp("baselines.json");
        db.save(&path).unwrap();
        let loaded = BaselineDb::load(&path).unwrap();
        assert_eq!(db, loaded);
    }

    #[test]
    fn samples_roundtrip() {
        let s = samples(25);
        let path = tmp("samples.json");
        save_samples(&s, &path).unwrap();
        let loaded = load_samples(&path).unwrap();
        assert_eq!(loaded.len(), 25);
        assert_eq!(loaded[7].scenario, s[7].scenario);
        assert_eq!(loaded[7].features, s[7].features);
    }

    #[test]
    fn load_missing_file_is_io_error_with_path() {
        match Predictor::load(tmp("nope.json")) {
            Err(ColocError::ArtifactIo { path, .. }) => {
                assert!(path.ends_with("nope.json"), "{path}")
            }
            other => panic!("expected ArtifactIo, got {other:?}"),
        }
        assert!(BaselineDb::load(tmp("nope.json")).is_err());
    }

    #[test]
    fn load_wrong_shape_is_corrupt_artifact_with_path() {
        let path = tmp("garbage.json");
        std::fs::write(&path, b"{\"not\": \"a predictor\"}").unwrap();
        match Predictor::load(&path) {
            Err(ColocError::CorruptArtifact { path: p, .. }) => {
                assert!(p.ends_with("garbage.json"), "{p}")
            }
            other => panic!("expected CorruptArtifact, got {other:?}"),
        }
    }

    #[test]
    fn truncated_samples_file_is_corrupt_artifact() {
        // Write a valid sample set, then chop it mid-stream — the shape a
        // crash during a non-atomic write leaves behind.
        let s = samples(25);
        let path = tmp("truncated.json");
        save_samples(&s, &path).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        match load_samples(&path) {
            Err(ColocError::CorruptArtifact { path: p, detail }) => {
                assert!(p.ends_with("truncated.json"), "{p}");
                assert!(!detail.is_empty());
            }
            other => panic!("expected CorruptArtifact, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_samples_roundtrip_after_rewrite() {
        // A corrupt file is not sticky: rewriting the artifact recovers.
        let path = tmp("rewrite.json");
        std::fs::write(&path, b"[{\"scenario\":").unwrap();
        assert!(load_samples(&path).is_err());
        let s = samples(10);
        save_samples(&s, &path).unwrap();
        let loaded = load_samples(&path).unwrap();
        assert_eq!(loaded.len(), 10);
        assert_eq!(loaded[3].scenario, s[3].scenario);
    }

    #[test]
    fn atomic_save_replaces_and_leaves_no_temp() {
        let path = tmp("atomic.json");
        let s = samples(5);
        save_json_atomic(&s, &path).unwrap();
        let first = load_samples(&path).unwrap();
        assert_eq!(first.len(), 5);
        let s2 = samples(9);
        save_json_atomic(&s2, &path).unwrap();
        assert_eq!(load_samples(&path).unwrap().len(), 9);
        let mut tmp_name = path.as_os_str().to_owned();
        tmp_name.push(".tmp");
        assert!(!std::path::Path::new(&tmp_name).exists());
    }
}
