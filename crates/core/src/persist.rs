//! Persistence: save trained models and baseline databases to JSON.
//!
//! The methodology's deployment story is train-once-predict-forever: a
//! resource manager trains on one sweep and then only ever featurizes and
//! predicts. This module serializes the artifacts that survive between
//! those stages — baseline databases, collected samples, and trained
//! predictors — so deployment needs neither the simulator nor retraining.

use crate::baseline::BaselineDb;
use crate::predictor::Predictor;
use crate::sample::Sample;
use crate::{ModelError, Result};
use std::path::Path;

fn io_err(e: impl std::fmt::Display) -> ModelError {
    ModelError::Ml(format!("persistence error: {e}"))
}

/// Serialize any supported artifact to pretty JSON at `path`.
pub fn save_json<T: serde::Serialize>(value: &T, path: impl AsRef<Path>) -> Result<()> {
    let bytes = serde_json::to_vec_pretty(value).map_err(io_err)?;
    std::fs::write(path, bytes).map_err(io_err)
}

/// Load an artifact previously written by [`save_json`].
pub fn load_json<T: serde::de::DeserializeOwned>(path: impl AsRef<Path>) -> Result<T> {
    let bytes = std::fs::read(path).map_err(io_err)?;
    serde_json::from_slice(&bytes).map_err(io_err)
}

impl Predictor {
    /// Save this trained predictor to JSON.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        save_json(self, path)
    }

    /// Load a predictor saved with [`Predictor::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<Predictor> {
        load_json(path)
    }
}

impl BaselineDb {
    /// Save the baseline database to JSON.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        save_json(self, path)
    }

    /// Load a baseline database saved with [`BaselineDb::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<BaselineDb> {
        load_json(path)
    }
}

/// Save a collected sample set to JSON.
pub fn save_samples(samples: &[Sample], path: impl AsRef<Path>) -> Result<()> {
    save_json(&samples, path)
}

/// Load a sample set saved with [`save_samples`].
pub fn load_samples(path: impl AsRef<Path>) -> Result<Vec<Sample>> {
    load_json(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::AppBaseline;
    use crate::features::FeatureSet;
    use crate::predictor::ModelKind;
    use crate::scenario::Scenario;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("coloc-persist-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn samples(n: usize) -> Vec<Sample> {
        (0..n)
            .map(|i| Sample {
                scenario: Scenario::homogeneous("t", "c", i % 5, 0),
                features: [
                    100.0 + i as f64,
                    (i % 5) as f64,
                    (i % 5) as f64 * 0.01,
                    1e-3,
                    (i % 5) as f64 * 0.3,
                    (i % 5) as f64 * 0.02,
                    0.1,
                    0.02,
                ],
                actual_time_s: (100.0 + i as f64) * (1.0 + (i % 5) as f64 * 0.05),
            })
            .collect()
    }

    #[test]
    fn predictor_roundtrip_preserves_predictions() {
        for kind in ModelKind::EXTENDED {
            let s = samples(80);
            let p = Predictor::train(kind, FeatureSet::D, &s, 3).unwrap();
            let path = tmp(&format!("pred_{}.json", kind.label()));
            p.save(&path).unwrap();
            let q = Predictor::load(&path).unwrap();
            assert_eq!(q.kind(), kind);
            assert_eq!(q.feature_set(), FeatureSet::D);
            for sample in &s[..10] {
                assert_eq!(p.predict(&sample.features), q.predict(&sample.features));
            }
        }
    }

    #[test]
    fn baseline_db_roundtrip() {
        let mut db = BaselineDb::new();
        db.insert(AppBaseline {
            name: "cg".into(),
            exec_time_s: vec![100.0, 120.0, 140.0],
            memory_intensity: 1.8e-2,
            cm_ca: 0.5,
            ca_ins: 0.036,
        });
        let path = tmp("baselines.json");
        db.save(&path).unwrap();
        let loaded = BaselineDb::load(&path).unwrap();
        assert_eq!(db, loaded);
    }

    #[test]
    fn samples_roundtrip() {
        let s = samples(25);
        let path = tmp("samples.json");
        save_samples(&s, &path).unwrap();
        let loaded = load_samples(&path).unwrap();
        assert_eq!(loaded.len(), 25);
        assert_eq!(loaded[7].scenario, s[7].scenario);
        assert_eq!(loaded[7].features, s[7].features);
    }

    #[test]
    fn load_missing_file_is_error() {
        assert!(Predictor::load(tmp("nope.json")).is_err());
        assert!(BaselineDb::load(tmp("nope.json")).is_err());
    }

    #[test]
    fn load_wrong_shape_is_error() {
        let path = tmp("garbage.json");
        std::fs::write(&path, b"{\"not\": \"a predictor\"}").unwrap();
        assert!(Predictor::load(&path).is_err());
    }
}
