//! The differential conformance suite: ≥ 200 seeded scenarios through
//! the optimized stack and the naive reference engine, plus corpus
//! replay. A failure is shrunk and persisted under `corpus/` before the
//! test panics, so the regression is replayed by every future run (and
//! uploaded as a CI artifact).

use coloc_conformance::{corpus, differential_sweep, seed_corpus, verify_dir};

/// Base seed of the generated sweep. Changing it trades one slice of
/// scenario space for another; the corpus keeps old discoveries alive.
const SWEEP_SEED: u64 = 0xC0_10C;
const SWEEP_CASES: usize = 220;

#[test]
fn optimized_engine_matches_reference_on_generated_scenarios() {
    match differential_sweep(SWEEP_SEED, SWEEP_CASES) {
        Ok(summary) => {
            assert_eq!(summary.cases, SWEEP_CASES);
            // The sweep must actually exercise the interesting axes, not
            // just happy-path mixes.
            assert!(summary.faulted > 0, "no faulted case generated");
            assert!(summary.budgeted > 0, "no fp-budget case generated");
            assert!(summary.solo > 0, "no solo case generated");
            assert!(
                summary.max_slowdown_gap <= coloc_conformance::SLOWDOWN_REL_TOL,
                "slowdown gap {} exceeds tolerance",
                summary.max_slowdown_gap
            );
        }
        Err(failure) => {
            let dir = corpus::default_corpus_dir();
            let path = corpus::write_counterexample(&dir, None, &failure.case)
                .unwrap_or_else(|e| panic!("failed to persist counterexample: {e}"));
            panic!(
                "differential divergence (shrunk case persisted to {}):\n{}\n{}",
                path.display(),
                failure.case.describe(),
                failure.detail
            );
        }
    }
}

#[test]
fn checked_in_corpus_replays_clean() {
    let report = verify_dir(&corpus::default_corpus_dir()).expect("corpus readable");
    assert!(
        report.total() >= seed_corpus().len(),
        "corpus on disk ({}) is smaller than the seed set ({}) — run \
         COLOC_REGEN_CORPUS=1 cargo test -p coloc-conformance seed_corpus",
        report.total(),
        seed_corpus().len()
    );
    assert!(
        report.is_clean(),
        "corpus replay failures:\n{}",
        report.failures.join("\n")
    );
}

/// Regenerates the checked-in seed corpus when `COLOC_REGEN_CORPUS=1`.
/// A no-op otherwise, so normal runs never write to the source tree.
#[test]
fn seed_corpus_files_regenerate_on_request() {
    if std::env::var("COLOC_REGEN_CORPUS").is_err() {
        return;
    }
    let dir = corpus::default_corpus_dir();
    for case in seed_corpus() {
        let path = dir.join(format!("{}.json", case.name));
        corpus::save_case(&path, &case).expect("write seed case");
    }
}
