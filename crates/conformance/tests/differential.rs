//! The differential conformance suite: ≥ 400 seeded scenarios through
//! the optimized stack and the naive reference engine, plus corpus
//! replay. Roughly half the co-located cases carry an event schedule
//! (staggered starts, mid-run arrival/departure, per-core clocks), so
//! the era-compacted driver is differentially checked against the naive
//! per-segment replay. A failure is shrunk and persisted under
//! `corpus/` before the test panics, so the regression is replayed by
//! every future run (and uploaded as a CI artifact).

use coloc_conformance::{corpus, differential_sweep, seed_corpus, verify_dir};

/// Base seed of the generated sweep. Changing it trades one slice of
/// scenario space for another; the corpus keeps old discoveries alive.
const SWEEP_SEED: u64 = 0xC0_10C;
const SWEEP_CASES: usize = 400;

#[test]
fn optimized_engine_matches_reference_on_generated_scenarios() {
    match differential_sweep(SWEEP_SEED, SWEEP_CASES) {
        Ok(summary) => {
            assert_eq!(summary.cases, SWEEP_CASES);
            // The sweep must actually exercise the interesting axes, not
            // just happy-path mixes.
            assert!(summary.faulted > 0, "no faulted case generated");
            assert!(summary.budgeted > 0, "no fp-budget case generated");
            assert!(summary.solo > 0, "no solo case generated");
            assert!(summary.events > 0, "no event-schedule case generated");
            assert!(
                summary.max_slowdown_gap <= coloc_conformance::SLOWDOWN_REL_TOL,
                "slowdown gap {} exceeds tolerance",
                summary.max_slowdown_gap
            );
        }
        Err(failure) => {
            let dir = corpus::default_corpus_dir();
            let path = corpus::write_counterexample(&dir, None, &failure.case)
                .unwrap_or_else(|e| panic!("failed to persist counterexample: {e}"));
            panic!(
                "differential divergence (shrunk case persisted to {}):\n{}\n{}",
                path.display(),
                failure.case.describe(),
                failure.detail
            );
        }
    }
}

#[test]
fn event_execution_is_bit_identical_across_thread_counts() {
    use coloc_conformance::diff::outcomes_bit_identical;
    use coloc_conformance::{gen_case, CoGroup, GenConstraints};
    use coloc_machine::Machine;

    // A batch of generated cases, keeping only those carrying an event
    // schedule — the scheduler's determinism claim is that the worker
    // pool's thread count is invisible to every simulated bit.
    let cases: Vec<_> = (0..64u64)
        .map(|i| gen_case(0xE7E27 + i, &GenConstraints::default()))
        .filter(|c| c.co.iter().any(CoGroup::has_schedule))
        .collect();
    assert!(cases.len() >= 8, "not enough event cases generated");

    let run_all = |threads: usize| {
        coloc_ml::parallel::run_indexed(cases.len(), threads, |i| {
            let built = cases[i].build().expect("case builds");
            let machine = Machine::new(built.spec.clone()).unwrap();
            machine
                .run_scheduled(&built.workload, built.schedules.as_deref(), &built.opts)
                .expect("event case runs")
        })
    };
    let sequential = run_all(1);
    for threads in [2usize, 8] {
        let parallel = run_all(threads);
        for (i, (a, b)) in sequential.iter().zip(&parallel).enumerate() {
            assert!(
                outcomes_bit_identical(a, b),
                "case {i} diverged at {threads} threads: {}",
                cases[i].describe()
            );
        }
    }
}

#[test]
fn mix_encoding_matches_legacy_featurize_across_the_sweep() {
    use coloc_conformance::{gen_case, CoGroup, GenConstraints};
    use coloc_model::{Lab, Scenario};

    // Every fault-free lockstep sweep case, mapped to a `Scenario` and
    // featurized both ways: the heterogeneous per-co-runner encoding
    // (`MixFeatures`) must lower to the legacy summed features bit for
    // bit — the homogeneous and mixed cases alike — and listing the co
    // groups in reverse must not move a single bit. One lab per machine
    // key, built lazily, so baselines are profiled once per preset.
    let mut labs: Vec<(String, Lab)> = Vec::new();
    let mut checked = 0usize;
    for i in 0..SWEEP_CASES as u64 {
        let case = gen_case(SWEEP_SEED.wrapping_add(i), &GenConstraints::default());
        if case.faults.is_some() || case.co.iter().any(CoGroup::has_schedule) {
            continue;
        }
        if !labs.iter().any(|(k, _)| *k == case.machine) {
            let spec = coloc_conformance::case::machine_spec(&case.machine).unwrap();
            let lab = Lab::new(spec, coloc_workloads::standard(), 7)
                .unwrap()
                .with_threads(1);
            labs.push((case.machine.clone(), lab));
        }
        let lab = &labs.iter().find(|(k, _)| *k == case.machine).unwrap().1;
        let scenario = Scenario {
            target: case.target.clone(),
            co_located: case.co.iter().map(|g| (g.app.clone(), g.count)).collect(),
            pstate: case.pstate,
        };
        let legacy = lab.featurize(&scenario).expect("sweep case featurizes");
        let mix = lab.mix_featurize(&scenario).expect("sweep case mixes");
        let lowered = mix.lower();
        for (k, (a, b)) in lowered.iter().zip(&legacy).enumerate() {
            assert!(
                a.to_bits() == b.to_bits(),
                "case {}: lowered feature {k} diverged from legacy ({a} vs {b})",
                case.describe()
            );
        }
        let mut reversed = scenario.clone();
        reversed.co_located.reverse();
        let relowered = lab
            .mix_featurize(&reversed)
            .expect("reversed mixes")
            .lower();
        for (k, (a, b)) in lowered.iter().zip(&relowered).enumerate() {
            assert!(
                a.to_bits() == b.to_bits(),
                "case {}: feature {k} moved under co-order reversal ({a} vs {b})",
                case.describe()
            );
        }
        checked += 1;
    }
    assert!(checked >= 100, "only {checked} lockstep cases in the sweep");
}

#[test]
fn checked_in_corpus_replays_clean() {
    let report = verify_dir(&corpus::default_corpus_dir()).expect("corpus readable");
    assert!(
        report.total() >= seed_corpus().len(),
        "corpus on disk ({}) is smaller than the seed set ({}) — run \
         COLOC_REGEN_CORPUS=1 cargo test -p coloc-conformance seed_corpus",
        report.total(),
        seed_corpus().len()
    );
    assert!(
        report.is_clean(),
        "corpus replay failures:\n{}",
        report.failures.join("\n")
    );
}

/// Regenerates the checked-in seed corpus when `COLOC_REGEN_CORPUS=1`.
/// A no-op otherwise, so normal runs never write to the source tree.
#[test]
fn seed_corpus_files_regenerate_on_request() {
    if std::env::var("COLOC_REGEN_CORPUS").is_err() {
        return;
    }
    let dir = corpus::default_corpus_dir();
    for case in seed_corpus() {
        let path = dir.join(format!("{}.json", case.name));
        corpus::save_case(&path, &case).expect("write seed case");
    }
}
