//! Run every metamorphic law over its budget of generated seeds. A
//! scenario-based violation is shrunk and persisted to the corpus before
//! the test panics.

use coloc_conformance::{all_laws, corpus, shrink, Law};

/// Base seed for law sweeps; each law's case `i` uses `LAW_SEED + i`.
const LAW_SEED: u64 = 0x1A55;

fn run_law(law: &dyn Law) {
    for i in 0..law.cases_per_run() as u64 {
        let seed = LAW_SEED + i;
        if let Err(violation) = law.check_seed(seed) {
            if let Some(case) = &violation.case {
                let shrunk = shrink(case, |c| law.check_case(c).is_err());
                let detail = law
                    .check_case(&shrunk)
                    .err()
                    .unwrap_or_else(|| violation.detail.clone());
                let dir = corpus::default_corpus_dir();
                let path = corpus::write_counterexample(&dir, Some(law.name()), &shrunk)
                    .unwrap_or_else(|e| panic!("failed to persist counterexample: {e}"));
                panic!(
                    "law `{}` violated at seed {seed} (shrunk case persisted to {}):\n{}\n{detail}",
                    law.name(),
                    path.display(),
                    shrunk.describe()
                );
            }
            panic!("{violation}");
        }
    }
}

#[test]
fn monotone_co_runner_law_holds() {
    run_law(
        coloc_conformance::laws::law_by_name("monotone-co-runner")
            .unwrap()
            .as_ref(),
    );
}

#[test]
fn solo_unity_law_holds() {
    run_law(
        coloc_conformance::laws::law_by_name("solo-unity")
            .unwrap()
            .as_ref(),
    );
}

#[test]
fn permutation_invariance_law_holds() {
    run_law(
        coloc_conformance::laws::law_by_name("permutation-invariance")
            .unwrap()
            .as_ref(),
    );
}

#[test]
fn metric_scale_invariance_law_holds() {
    run_law(
        coloc_conformance::laws::law_by_name("metric-scale-invariance")
            .unwrap()
            .as_ref(),
    );
}

#[test]
fn feature_nesting_law_holds() {
    run_law(
        coloc_conformance::laws::law_by_name("feature-nesting")
            .unwrap()
            .as_ref(),
    );
}

#[test]
fn arrival_order_invariance_law_holds() {
    run_law(
        coloc_conformance::laws::law_by_name("arrival-order-invariance")
            .unwrap()
            .as_ref(),
    );
}

#[test]
fn lockstep_degeneracy_law_holds() {
    run_law(
        coloc_conformance::laws::law_by_name("lockstep-degeneracy")
            .unwrap()
            .as_ref(),
    );
}

#[test]
fn departure_at_end_noop_law_holds() {
    run_law(
        coloc_conformance::laws::law_by_name("departure-at-end-noop")
            .unwrap()
            .as_ref(),
    );
}

#[test]
fn matrix_identical_pair_symmetry_law_holds() {
    run_law(
        coloc_conformance::laws::law_by_name("matrix-identical-pair-symmetry")
            .unwrap()
            .as_ref(),
    );
}

#[test]
fn mixed_pair_order_invariance_law_holds() {
    run_law(
        coloc_conformance::laws::law_by_name("mixed-pair-order-invariance")
            .unwrap()
            .as_ref(),
    );
}

#[test]
fn every_law_is_covered_by_a_named_test_above() {
    // If a new law lands in `all_laws`, this forces a matching test.
    let names: Vec<_> = all_laws().iter().map(|l| l.name()).collect();
    assert_eq!(
        names,
        vec![
            "monotone-co-runner",
            "solo-unity",
            "permutation-invariance",
            "metric-scale-invariance",
            "feature-nesting",
            "arrival-order-invariance",
            "lockstep-degeneracy",
            "departure-at-end-noop",
            "matrix-identical-pair-symmetry",
            "mixed-pair-order-invariance",
        ]
    );
}
