//! Run every placement law over its budget of generated seeds, and keep
//! the checked-in placement seed corpus replaying clean. A violation is
//! shrunk and persisted to `corpus/placement/` before the test panics —
//! same discipline as the engine laws.

use coloc_conformance::default_corpus_dir;
use coloc_conformance::placement_laws::{
    self, placement_corpus_dir, placement_law_by_name, placement_laws, placement_seed_corpus,
    shrink_placement, verify_placement_dir, PlacementLaw,
};

/// Base seed for placement-law sweeps; each law's case `i` uses
/// `PLACEMENT_LAW_SEED + i`.
const PLACEMENT_LAW_SEED: u64 = 0x9_1A55;

fn run_law(law: &dyn PlacementLaw) {
    for i in 0..law.cases_per_run() as u64 {
        let seed = PLACEMENT_LAW_SEED + i;
        let case = law.case_for_seed(seed);
        if let Err(detail) = law.check_case(&case) {
            let shrunk = shrink_placement(&case, |c| law.check_case(c).is_err());
            let detail = law.check_case(&shrunk).err().unwrap_or(detail);
            let dir = placement_corpus_dir(&default_corpus_dir());
            let path = placement_laws::write_placement_counterexample(&dir, law.name(), &shrunk)
                .unwrap_or_else(|e| panic!("failed to persist counterexample: {e}"));
            panic!(
                "placement law `{}` violated at seed {seed} (shrunk case persisted to {}):\n{}\n{detail}",
                law.name(),
                path.display(),
                shrunk.describe()
            );
        }
    }
}

#[test]
fn placement_permutation_law_holds() {
    run_law(
        placement_law_by_name("placement-permutation")
            .unwrap()
            .as_ref(),
    );
}

#[test]
fn placement_solo_regret_law_holds() {
    run_law(
        placement_law_by_name("placement-solo-regret")
            .unwrap()
            .as_ref(),
    );
}

#[test]
fn placement_empty_machine_law_holds() {
    run_law(
        placement_law_by_name("placement-empty-machine")
            .unwrap()
            .as_ref(),
    );
}

/// Wide sweep of every placement law (50 seeds each) — too slow for the
/// default suite; CI's placement job and `cargo test -- --ignored` run
/// it. The empty-machine law's monotone arm is the one with theoretical
/// room for Graham-style anomalies, so it gets the deep soak.
#[test]
#[ignore = "wide sweep; run explicitly or in CI"]
fn placement_laws_hold_over_a_wide_seed_sweep() {
    for law in placement_laws() {
        for i in 0..50u64 {
            let seed = PLACEMENT_LAW_SEED + 1000 + i;
            let case = law.case_for_seed(seed);
            if let Err(detail) = law.check_case(&case) {
                panic!(
                    "placement law `{}` violated at sweep seed {seed}:\n{}\n{detail}",
                    law.name(),
                    case.describe()
                );
            }
        }
    }
}

#[test]
fn every_placement_law_is_covered_by_a_named_test_above() {
    let names: Vec<_> = placement_laws().iter().map(|l| l.name()).collect();
    assert_eq!(
        names,
        vec![
            "placement-permutation",
            "placement-solo-regret",
            "placement-empty-machine",
        ]
    );
}

#[test]
fn checked_in_placement_seed_corpus_matches_disk_and_replays_clean() {
    let dir = placement_corpus_dir(&default_corpus_dir());
    // The seed set on disk must match the generator exactly...
    for (name, case) in placement_seed_corpus() {
        let on_disk = placement_laws::load_placement_case(&dir.join(&name))
            .unwrap_or_else(|e| panic!("missing placement seed case {name}: {e}"));
        assert_eq!(on_disk, case, "{name} drifted from placement_seed_corpus()");
    }
    // ...and the whole directory (seeds + any persisted counterexamples)
    // must replay clean through the tagged laws.
    let report = verify_placement_dir(&dir).unwrap();
    assert!(
        report.law_checks >= placement_seed_corpus().len(),
        "placement corpus unexpectedly small: {}",
        report.law_checks
    );
    assert!(
        report.is_clean(),
        "placement corpus replay failed:\n{}",
        report.failures.join("\n")
    );
}

#[test]
fn shrinker_reaches_a_minimal_failing_case() {
    // Shrink with a predicate that keeps "jobs >= 4 on a non-e5649
    // machine" failing — the shrinker must drive everything else to its
    // floor without escaping the predicate.
    let law = placement_law_by_name("placement-permutation").unwrap();
    let case = law.case_for_seed(PLACEMENT_LAW_SEED + 1);
    let shrunk = shrink_placement(&case, |c| c.jobs >= 4);
    assert_eq!(shrunk.jobs, 4);
    assert_eq!(shrunk.sockets, 1);
    assert_eq!(shrunk.machine, "e5649");
    assert_eq!(
        shrunk.mix,
        coloc_placement::ClassMix::uniform().weights,
        "mix simplifies to uniform"
    );
}

#[test]
fn verify_placement_dir_flags_untagged_and_broken_cases() {
    let dir = std::env::temp_dir().join(format!(
        "coloc-placement-corpus-{}-{}",
        std::process::id(),
        0x51u32
    ));
    let _ = std::fs::remove_dir_all(&dir);
    // An untagged case is a failure: replay would silently skip it.
    let mut case = placement_law_by_name("placement-solo-regret")
        .unwrap()
        .case_for_seed(3);
    case.law = None;
    placement_laws::save_placement_case(&dir.join("untagged.json"), &case).unwrap();
    let report = verify_placement_dir(&dir).unwrap();
    assert_eq!(report.law_checks, 1);
    assert!(!report.is_clean());

    // An unknown law tag is a failure too — a typo must not silently
    // turn a counterexample into a no-op.
    let mut unknown = placement_law_by_name("placement-solo-regret")
        .unwrap()
        .case_for_seed(4);
    unknown.law = Some("placement-unknown-law".into());
    placement_laws::save_placement_case(&dir.join("unknown.json"), &unknown).unwrap();
    let report = verify_placement_dir(&dir).unwrap();
    assert_eq!(report.law_checks, 2);
    assert_eq!(report.failures.len(), 2);

    let _ = std::fs::remove_dir_all(&dir);
    // Missing directory = empty corpus.
    assert!(verify_placement_dir(&dir).unwrap().is_clean());
}
