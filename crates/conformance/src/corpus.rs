//! The replayable scenario corpus.
//!
//! `crates/conformance/corpus/` holds checked-in JSON cases: a seed set
//! covering every engine feature axis, plus any shrunk counterexample a
//! failing suite run persisted. Replay is cheap — `coloc verify` and the
//! `repro conformance` artifact both walk the directory, re-running the
//! differential oracle on plain cases and the named law on law-tagged
//! cases — so every future PR re-litigates old failures for free.

use crate::case::CorpusCase;
use crate::diff;
use crate::laws;
use std::path::{Path, PathBuf};

/// The checked-in corpus directory (compile-time anchored to this crate,
/// so replay works from any working directory).
pub fn default_corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// Save a case as pretty JSON (trailing newline, diff-friendly).
pub fn save_case(path: &Path, case: &CorpusCase) -> Result<(), String> {
    let mut bytes = serde_json::to_vec_pretty(case).map_err(|e| e.to_string())?;
    bytes.push(b'\n');
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).map_err(|e| format!("{}: {e}", parent.display()))?;
    }
    std::fs::write(path, bytes).map_err(|e| format!("{}: {e}", path.display()))
}

/// Load one case.
pub fn load_case(path: &Path) -> Result<CorpusCase, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
    serde_json::from_slice(&bytes).map_err(|e| format!("{}: {e}", path.display()))
}

/// Load every `.json` case in a directory, sorted by file name for a
/// stable replay order. A missing directory is an empty corpus.
pub fn load_dir(dir: &Path) -> Result<Vec<(PathBuf, CorpusCase)>, String> {
    let mut paths: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect(),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("{}: {e}", dir.display())),
    };
    paths.sort();
    paths
        .into_iter()
        .map(|p| load_case(&p).map(|c| (p, c)))
        .collect()
}

/// Persist a shrunk counterexample; returns the path written. The file
/// name embeds the law (or `differential`) and the case seed, so repeat
/// failures overwrite rather than accumulate.
pub fn write_counterexample(
    dir: &Path,
    law: Option<&str>,
    case: &CorpusCase,
) -> Result<PathBuf, String> {
    let mut case = case.clone();
    case.law = law.map(str::to_string);
    let tag = law.unwrap_or("differential");
    let path = dir.join(format!("counterexample-{tag}-{:016x}.json", case.seed));
    save_case(&path, &case)?;
    Ok(path)
}

/// Result of replaying a corpus directory.
#[derive(Clone, Debug, Default)]
pub struct VerifyReport {
    /// Cases replayed through the differential oracle.
    pub differential: usize,
    /// Cases replayed through their named law.
    pub law_checks: usize,
    /// Failures, as `path: detail` strings.
    pub failures: Vec<String>,
}

impl VerifyReport {
    /// True when every case replayed clean.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Total cases replayed.
    pub fn total(&self) -> usize {
        self.differential + self.law_checks
    }
}

/// Replay every case in `dir` on one thread: law-tagged cases re-check
/// their law, everything else goes through the differential oracle.
/// Equivalent to [`verify_dir_threaded`] with `threads = 1`.
pub fn verify_dir(dir: &Path) -> Result<VerifyReport, String> {
    verify_dir_threaded(dir, 1)
}

/// Replay every case in `dir` across `threads` workers (0 = one per
/// core, capped at the case count). Cases are independent, so replay
/// fans out over the work-stealing pool; results aggregate in the
/// sorted-by-file-name order, making the report identical to a
/// sequential replay.
pub fn verify_dir_threaded(dir: &Path, threads: usize) -> Result<VerifyReport, String> {
    let cases = load_dir(dir)?;
    // (counted-as-law, counted-as-differential, failure) per case; an
    // unknown law counts as neither, matching the sequential replay.
    let outcomes = coloc_ml::parallel::run_indexed(cases.len(), threads, |i| {
        let (path, case) = &cases[i];
        match &case.law {
            Some(name) => match laws::law_by_name(name) {
                Some(law) => match law.check_case(case) {
                    Ok(()) => (true, false, None),
                    Err(detail) => (true, false, Some(format!("{}: {detail}", path.display()))),
                },
                None => (
                    false,
                    false,
                    Some(format!("{}: unknown law {name:?}", path.display())),
                ),
            },
            None => match diff::check_case(case) {
                Ok(_) => (false, true, None),
                Err(detail) => (false, true, Some(format!("{}: {detail}", path.display()))),
            },
        }
    });

    let mut report = VerifyReport::default();
    for (is_law, is_diff, failure) in outcomes {
        if is_law {
            report.law_checks += 1;
        }
        if is_diff {
            report.differential += 1;
        }
        if let Some(detail) = failure {
            report.failures.push(detail);
        }
    }
    Ok(report)
}

/// The canonical seed corpus: hand-picked cases pinning every feature
/// axis of the engine (both machines, multi-phase apps, partitioning,
/// degraded fixed points, every fault preset, solo and crowded mixes).
/// Checked into `corpus/` and replayed by CI; regenerate the files with
/// `COLOC_REGEN_CORPUS=1 cargo test -p coloc-conformance seed_corpus`.
pub fn seed_corpus() -> Vec<CorpusCase> {
    use crate::case::{CoGroup, FaultSpec};
    let mk = |name: &str,
              machine: &str,
              target: &str,
              co: &[(&str, usize)],
              pstate: usize,
              seed: u64,
              noise: f64|
     -> CorpusCase {
        CorpusCase {
            name: name.into(),
            machine: machine.into(),
            target: target.into(),
            co: co
                .iter()
                .map(|&(app, count)| CoGroup::plain(app, count))
                .collect(),
            pstate,
            seed,
            noise_sigma: noise,
            instr_scale: 0.02,
            llc_partitioned: false,
            fp_budget: 0,
            faults: None,
            law: None,
        }
    };

    let mut cases = vec![
        // The plainest possible case: solo, noiseless, fastest P-state.
        mk("seed-solo-clean", "e5649", "canneal", &[], 0, 1, 0.0),
        // A paper-style contended mix with measurement noise.
        mk(
            "seed-contended-noisy",
            "e5649",
            "canneal",
            &[("cg", 3)],
            2,
            2,
            0.008,
        ),
        // Multi-phase target (ft) against a multi-phase co-runner
        // (bodytrack): exercises phase-boundary segmentation.
        mk(
            "seed-multiphase",
            "e5649",
            "ft",
            &[("bodytrack", 2)],
            1,
            3,
            0.008,
        ),
        // The 12-core machine at full occupancy, slowest P-state.
        mk(
            "seed-12core-full",
            "e5_2697v2",
            "streamcluster",
            &[("cg", 6), ("ep", 5)],
            5,
            4,
            0.0,
        ),
    ];

    // Partitioned LLC: cache contention off, DRAM contention on.
    let mut partitioned = mk("seed-partitioned", "e5649", "mg", &[("sp", 4)], 3, 5, 0.008);
    partitioned.llc_partitioned = true;
    cases.push(partitioned);

    // A budgeted fixed point that must degrade identically in both
    // engines (truncated solves, warm-started CPI).
    let mut budgeted = mk("seed-fp-budget", "e5649", "cg", &[("mg", 4)], 0, 6, 0.0);
    budgeted.fp_budget = 32;
    cases.push(budgeted);

    // Fault presets: a plan that cannot fire, and both chaos presets.
    let mut noop = mk("seed-fault-noop", "e5649", "ua", &[("cg", 2)], 1, 7, 0.008);
    noop.faults = Some(FaultSpec::Noop { seed: 70 });
    cases.push(noop);
    let mut light = mk(
        "seed-fault-light",
        "e5_2697v2",
        "canneal",
        &[("cg", 5)],
        2,
        8,
        0.008,
    );
    light.faults = Some(FaultSpec::Light { seed: 80 });
    cases.push(light);
    let mut heavy = mk(
        "seed-fault-heavy",
        "e5_2697v2",
        "ft",
        &[("streamcluster", 7)],
        4,
        9,
        0.008,
    );
    heavy.faults = Some(FaultSpec::Heavy { seed: 90 });
    cases.push(heavy);

    // A compute-bound target barely disturbed by a crowd — the regime
    // where slowdown sits just above 1 and relative tolerances are
    // tightest.
    cases.push(mk(
        "seed-compute-bound",
        "e5649",
        "ep",
        &[("blackscholes", 5)],
        0,
        10,
        0.0,
    ));

    // ---- Event-schedule families ------------------------------------
    // Every value is an exact binary fraction, so the JSON files replay
    // bit-identically. Ticks are in simulated seconds; at the corpus
    // `instr_scale` runs last a few hundredths of a second, so the
    // palette values land mid-run.

    // Staggered starts: co-runners begin mid-app, no arrivals.
    let mut stagger = mk(
        "seed-event-stagger",
        "e5649",
        "canneal",
        &[("cg", 2), ("mg", 1)],
        1,
        11,
        0.0,
    );
    stagger.co[0].phase_offset = Some(0.25);
    stagger.co[1].phase_offset = Some(0.5);
    cases.push(stagger);

    // A co-runner that arrives mid-run.
    let mut arrival = mk(
        "seed-event-arrival",
        "e5649",
        "ft",
        &[("bodytrack", 2)],
        2,
        12,
        0.0,
    );
    arrival.co[0].arrival = Some(0.015625);
    cases.push(arrival);

    // A co-runner that departs mid-run, under measurement noise.
    let mut departure = mk(
        "seed-event-departure",
        "e5649",
        "ua",
        &[("cg", 3)],
        0,
        13,
        0.008,
    );
    departure.co[0].departure = Some(0.0625);
    cases.push(departure);

    // A bounded residency window: arrive, contend, leave.
    let mut window = mk(
        "seed-event-window",
        "e5_2697v2",
        "streamcluster",
        &[("sp", 4)],
        3,
        14,
        0.0,
    );
    window.co[0].arrival = Some(0.015625);
    window.co[0].departure = Some(0.078125);
    cases.push(window);

    // Per-core clock ratios: one slow group, one fast.
    let mut clocks = mk(
        "seed-event-clocks",
        "e5649",
        "mg",
        &[("cg", 2), ("ep", 2)],
        1,
        15,
        0.0,
    );
    clocks.co[0].clock_ratio = Some(0.5);
    clocks.co[1].clock_ratio = Some(1.5);
    cases.push(clocks);

    // Mixed intensity classes with mixed event kinds: a class-I streamer
    // arriving mid-run next to a staggered, overclocked class-IV group.
    let mut mixed = mk(
        "seed-event-mixed-class",
        "e5_2697v2",
        "canneal",
        &[("cg", 4), ("ep", 4)],
        2,
        16,
        0.008,
    );
    mixed.co[0].arrival = Some(0.03125);
    mixed.co[1].phase_offset = Some(0.375);
    mixed.co[1].clock_ratio = Some(1.25);
    cases.push(mixed);

    // Disjoint residency windows: 10 co instances on a 6-core machine,
    // legal because the first wave departs before the second arrives —
    // the capacity check is over *peak* concurrency, not the static sum.
    let mut disjoint = mk(
        "seed-event-disjoint-windows",
        "e5649",
        "canneal",
        &[("cg", 5), ("mg", 5)],
        0,
        17,
        0.0,
    );
    disjoint.co[0].departure = Some(0.03125);
    disjoint.co[1].arrival = Some(0.03125);
    cases.push(disjoint);

    // Every schedule field at once on a single group.
    let mut full = mk(
        "seed-event-all-fields",
        "e5649",
        "fluidanimate",
        &[("streamcluster", 2)],
        4,
        18,
        0.0,
    );
    full.co[0].phase_offset = Some(0.125);
    full.co[0].arrival = Some(0.0078125);
    full.co[0].departure = Some(0.1328125);
    full.co[0].clock_ratio = Some(0.75);
    cases.push(full);

    // Events composed with a partitioned LLC.
    let mut part = mk(
        "seed-event-partitioned",
        "e5649",
        "sp",
        &[("canneal", 3)],
        2,
        19,
        0.0,
    );
    part.llc_partitioned = true;
    part.co[0].arrival = Some(0.015625);
    part.co[0].departure = Some(0.140625);
    cases.push(part);

    // Events composed with fault injection and a fixed-point budget: the
    // full degraded-path stack on top of a scheduled workload.
    let mut chaotic = mk(
        "seed-event-faulted-budget",
        "e5_2697v2",
        "ft",
        &[("cg", 6), ("bodytrack", 3)],
        5,
        20,
        0.008,
    );
    chaotic.faults = Some(FaultSpec::Light { seed: 200 });
    chaotic.fp_budget = 200;
    chaotic.co[0].phase_offset = Some(0.25);
    chaotic.co[1].arrival = Some(0.015625);
    chaotic.co[1].clock_ratio = Some(1.25);
    cases.push(chaotic);

    // ---- Law-tagged cases -------------------------------------------
    // Replayed through their named law instead of the differential
    // oracle, so `coloc verify` re-litigates the exact invariants the
    // registry pipeline leans on.

    // A cross-interference matrix diagonal cell: canneal against one
    // instance of itself, with measurement noise — the identical-pair
    // counter symmetry must hold bit-for-bit anyway.
    let mut diagonal = mk(
        "seed-law-identical-pair",
        "e5649",
        "canneal",
        &[("canneal", 1)],
        1,
        21,
        0.008,
    );
    diagonal.law = Some("matrix-identical-pair-symmetry".into());
    cases.push(diagonal);

    // A heterogeneous mixed pair: the per-co-runner encoding must lower
    // to the same bits whichever way the pair is listed.
    let mut mixed_pair = mk(
        "seed-law-mixed-pair",
        "e5649",
        "ft",
        &[("cg", 1), ("ep", 1)],
        0,
        22,
        0.0,
    );
    mixed_pair.law = Some("mixed-pair-order-invariance".into());
    cases.push(mixed_pair);

    cases
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::CoGroup;
    use coloc_machine::GroupRef;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("coloc_conformance_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn save_load_round_trip() {
        let dir = tmp_dir("roundtrip");
        let case = crate::case::gen_case(3, &crate::case::GenConstraints::default());
        let path = dir.join("case.json");
        save_case(&path, &case).unwrap();
        assert_eq!(load_case(&path).unwrap(), case);
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].1, case);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_dir_is_empty_corpus() {
        let dir = std::env::temp_dir().join("coloc_conformance_definitely_missing");
        assert!(load_dir(&dir).unwrap().is_empty());
    }

    #[test]
    fn counterexample_files_carry_their_law() {
        let dir = tmp_dir("counterexample");
        let case = crate::case::gen_case(4, &crate::case::GenConstraints::default());
        let path = write_counterexample(&dir, Some("solo-unity"), &case).unwrap();
        let loaded = load_case(&path).unwrap();
        assert_eq!(loaded.law.as_deref(), Some("solo-unity"));
        assert!(path
            .file_name()
            .unwrap()
            .to_string_lossy()
            .starts_with("counterexample-solo-unity-"));
        let diff_path = write_counterexample(&dir, None, &case).unwrap();
        assert!(diff_path
            .file_name()
            .unwrap()
            .to_string_lossy()
            .starts_with("counterexample-differential-"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seed_corpus_is_buildable_and_distinctly_named() {
        let cases = seed_corpus();
        assert!(cases.len() >= 18, "corpus should cover the feature axes");
        assert!(
            cases
                .iter()
                .filter(|c| c.co.iter().any(CoGroup::has_schedule))
                .count()
                >= 10,
            "corpus should cover the event families"
        );
        let mut names: Vec<_> = cases.iter().map(|c| c.name.clone()).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate corpus case names");
        for case in &cases {
            let built = case.build().expect("seed case builds");
            // Capacity is over *peak* concurrency: disjoint residency
            // windows legally oversubscribe the static sum.
            let occupied = match &built.schedules {
                Some(s) => {
                    let refs: Vec<coloc_machine::GroupRef> =
                        built.workload.iter().map(GroupRef::from_group).collect();
                    coloc_machine::event::peak_cores(&refs, s)
                }
                None => built.workload.iter().map(|g| g.count).sum(),
            };
            assert!(occupied <= built.spec.cores, "{}", case.describe());
        }
    }

    #[test]
    fn verify_reports_unknown_laws() {
        let dir = tmp_dir("unknown_law");
        let mut case = crate::case::gen_case(5, &crate::case::GenConstraints::default());
        case.law = Some("not-a-law".into());
        save_case(&dir.join("bad.json"), &case).unwrap();
        let report = verify_dir(&dir).unwrap();
        assert!(!report.is_clean());
        assert!(report.failures[0].contains("unknown law"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
