//! The reference engine: a deliberately naive re-implementation of
//! [`coloc_machine::engine::Machine::run`].
//!
//! The optimized engine earns its speed through data-structure tricks —
//! a per-run [`RunScratch`] so the segment loop allocates nothing, MRCs
//! cloned into instance slots only when a group's phase changes, a
//! `group_first` index replacing owner scans, and a memoizing `RunCache`
//! in front of the whole thing. None of those tricks may change a single
//! bit of the answer: within a segment the contention fixed point is a
//! pure function of the phase parameters, and across segments the only
//! carried state is per-group progress, the CPI warm start, and the
//! accumulated counters.
//!
//! `RefEngine` re-derives everything from first principles every segment:
//!
//! * fresh allocations for every per-segment vector (occupancy, rates,
//!   instance tables) — no scratch reuse;
//! * miss-rate curves recomputed from the stack-distance distribution at
//!   the top of every segment — no incremental MRC caching;
//! * owner lookups by linear `position()` scans — O(groups × instances);
//! * the DRAM latency and LLC occupancy formulas written out inline from
//!   their definitions rather than through `MemorySystem` /
//!   `occupancy_step`, so a regression in either substrate crate is also
//!   caught;
//! * no memoization anywhere.
//!
//! Because both engines evaluate the same real-number formulas in the
//! same order, their outcomes agree *bit for bit*; the differential
//! harness in this crate's tests asserts agreement to 1e-9 relative on
//! every field and on derived slowdowns, which the bit-identity satisfies
//! with the entire tolerance left as headroom for future refactors that
//! legitimately reassociate arithmetic.
//!
//! [`RunScratch`]: coloc_machine::engine::Machine

use coloc_cachesim::MissRateCurve;
use coloc_machine::engine::FP_TOLERANCE;
use coloc_machine::{
    Convergence, CounterBlock, FaultPlan, MachineError, MachineSpec, Result, RunOptions,
    RunOutcome, RunnerGroup,
};
use rand::Rng as _;
use rand::SeedableRng as _;

/// Per-segment iteration cap for a full solve. Mirrors the optimized
/// engine's private constant; if the engine's cap ever drifts, the
/// differential suite fails on any scenario whose fixed point is still
/// moving at iteration 250 — exactly the alarm we want.
const MAX_FP_ITERS: u64 = 250;
/// Per-segment floor once the fixed-point budget is exhausted (mirrors
/// the engine's private `DEGRADED_FP_ITERS`).
const DEGRADED_FP_ITERS: u64 = 4;

/// Bytes transferred per LLC miss (mirrors `coloc_memsys::MISS_BYTES`,
/// spelled out here so the oracle does not read the optimized constant).
const MISS_BYTES: f64 = 64.0;

/// The naive oracle. Holds only the static machine description.
#[derive(Clone, Debug)]
pub struct RefEngine {
    spec: MachineSpec,
}

impl RefEngine {
    /// Build a reference engine over a validated spec.
    pub fn new(spec: MachineSpec) -> Result<RefEngine> {
        spec.validate().map_err(MachineError::InvalidSpec)?;
        if spec.dram.peak_bw_bytes_per_sec <= 0.0 || spec.dram.idle_latency_ns <= 0.0 {
            return Err(MachineError::InvalidSpec(
                "DRAM peak bandwidth and idle latency must be positive".into(),
            ));
        }
        Ok(RefEngine { spec })
    }

    /// The machine's spec.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// Run `workload` (group 0 = target) exactly as the optimized engine
    /// would, recomputing all derived state from scratch each segment.
    pub fn run(&self, workload: &[RunnerGroup], opts: &RunOptions) -> Result<RunOutcome> {
        if workload.is_empty() {
            return Err(MachineError::EmptyWorkload);
        }
        let requested: usize = workload.iter().map(|g| g.count).sum();
        if requested > self.spec.cores {
            return Err(MachineError::NotEnoughCores {
                requested,
                available: self.spec.cores,
            });
        }
        let freq_hz = self
            .spec
            .freq_hz(opts.pstate)
            .ok_or(MachineError::BadPState {
                index: opts.pstate,
                available: self.spec.num_pstates(),
            })?;
        for g in workload {
            if g.count == 0 {
                return Err(MachineError::BadProfile(format!(
                    "{}: group count is zero",
                    g.app.name
                )));
            }
            g.app.validate().map_err(MachineError::BadProfile)?;
        }

        let n_groups = workload.len();
        let mut progress = vec![0.0f64; n_groups];
        let mut counters = vec![CounterBlock::default(); n_groups];
        let mut share_time_acc = vec![0.0f64; n_groups];
        let mut latency_time_acc = 0.0f64;
        let mut wall = 0.0f64;
        let mut segments = 0usize;
        let mut fp_iterations = 0u64;
        let mut degraded = false;
        let mut worst_residual = 0.0f64;
        // The CPI warm start is semantics, not an optimization: segment N's
        // solve starts from segment N−1's converged CPI, so the oracle must
        // carry it too.
        let mut cpi: Vec<f64> = workload.iter().map(|g| g.app.phases[0].cpi_base).collect();

        loop {
            segments += 1;
            if segments > opts.max_segments {
                // Typed in lockstep with the engine: the differential suite
                // requires errors, not just outcomes, to match exactly.
                return Err(MachineError::SegmentOverflow {
                    segments,
                    cap: opts.max_segments,
                });
            }

            // Everything below is rebuilt from scratch: phases, MRCs,
            // instance tables, occupancy.
            let phase_info: Vec<(usize, f64)> = workload
                .iter()
                .zip(&progress)
                .map(|(g, &p)| g.app.phase_at(p))
                .collect();
            let mrcs: Vec<MissRateCurve> = workload
                .iter()
                .enumerate()
                .map(|(gi, g)| g.app.phases[phase_info[gi].0].dist.miss_rate_curve())
                .collect();
            // One entry per core-resident instance: its owning group.
            let owner: Vec<usize> = workload
                .iter()
                .enumerate()
                .flat_map(|(gi, g)| std::iter::repeat_n(gi, g.count))
                .collect();

            let iter_cap = if opts.fp_budget == 0 {
                MAX_FP_ITERS
            } else {
                let remaining = opts.fp_budget.saturating_sub(fp_iterations);
                remaining.clamp(DEGRADED_FP_ITERS, MAX_FP_ITERS)
            };
            let (ips, miss_rate, occ_per_instance, latency_ns, iters, residual) = self
                .solve_segment_naive(
                    workload,
                    &phase_info,
                    &mrcs,
                    &owner,
                    freq_hz,
                    opts.llc_partitioned,
                    &mut cpi,
                    iter_cap,
                );
            fp_iterations += iters;
            if residual >= FP_TOLERANCE {
                degraded = true;
                worst_residual = worst_residual.max(residual);
            }

            let mut dt = f64::INFINITY;
            for (gi, p) in progress.iter().enumerate() {
                let remaining = phase_info[gi].1 - p;
                let t = remaining / ips[gi];
                if t < dt {
                    dt = t;
                }
            }
            if !(dt.is_finite() && dt > 0.0) {
                return Err(MachineError::Numeric(format!(
                    "degenerate segment dt = {dt} at segment {segments}"
                )));
            }

            for gi in 0..n_groups {
                let instr = ips[gi] * dt;
                progress[gi] += instr;
                let acc = instr * workload[gi].app.phases[phase_info[gi].0].accesses_per_instr;
                counters[gi].instructions += instr;
                counters[gi].cycles += freq_hz * dt;
                counters[gi].llc_accesses += acc;
                counters[gi].llc_misses += acc * miss_rate[gi];
                share_time_acc[gi] += occ_per_instance[gi] * dt;
            }
            latency_time_acc += latency_ns * dt;
            wall += dt;

            let mut target_done = false;
            for gi in 0..n_groups {
                let boundary = phase_info[gi].1;
                if progress[gi] >= boundary - 1e-6 * workload[gi].app.instructions.max(1.0) {
                    progress[gi] = boundary;
                    if (boundary - workload[gi].app.instructions).abs()
                        < 1e-9 * workload[gi].app.instructions
                    {
                        counters[gi].completed_runs += 1;
                        if gi == 0 {
                            target_done = true;
                        } else {
                            progress[gi] = 0.0;
                        }
                    }
                }
            }
            if target_done {
                break;
            }
        }

        let mut wall_measured = wall;
        if opts.noise_sigma > 0.0 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(opts.seed);
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen::<f64>();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            let scale = (opts.noise_sigma * z).exp();
            wall_measured *= scale;
            for c in counters.iter_mut() {
                c.cycles *= scale;
            }
        }

        Ok(RunOutcome {
            wall_time_s: wall_measured,
            counters,
            segments,
            fp_iterations,
            avg_llc_share_bytes: share_time_acc.iter().map(|&s| s / wall).collect(),
            avg_mem_latency_ns: latency_time_acc / wall,
            convergence: if degraded {
                Convergence::Degraded {
                    fp_iterations,
                    residual: worst_residual,
                }
            } else {
                Convergence::Converged
            },
            faults: Vec::new(),
        })
    }

    /// Run and then inject faults, mirroring `RunCache::run_with_faults`
    /// (which applies the plan with the run's noise seed as the stream).
    pub fn run_faulted(
        &self,
        workload: &[RunnerGroup],
        opts: &RunOptions,
        plan: Option<&FaultPlan>,
    ) -> Result<RunOutcome> {
        let mut outcome = self.run(workload, opts)?;
        if let Some(plan) = plan {
            plan.apply(opts.seed, &mut outcome);
        }
        Ok(outcome)
    }

    /// Solve one segment's contention fixed point with per-call
    /// allocations and linear scans. Returns
    /// `(ips, miss_rate, occ_per_instance, latency_ns, iters, residual)`,
    /// the first three indexed per group.
    #[allow(clippy::too_many_arguments, clippy::type_complexity)]
    fn solve_segment_naive(
        &self,
        workload: &[RunnerGroup],
        phase_info: &[(usize, f64)],
        mrcs: &[MissRateCurve],
        owner: &[usize],
        freq_hz: f64,
        llc_partitioned: bool,
        cpi: &mut [f64],
        max_iters: u64,
    ) -> (Vec<f64>, Vec<f64>, Vec<f64>, f64, u64, f64) {
        let n_groups = workload.len();
        let cap = self.spec.llc_bytes;
        let n_inst = owner.len();

        let mut occ: Vec<f64> = vec![cap as f64 / n_inst as f64; n_inst];
        let mut access_rate = vec![0.0f64; n_groups];
        let mut miss_rate = vec![0.0f64; n_groups];
        let mut latency_ns = self.spec.dram.idle_latency_ns;
        let mut iters = 0u64;
        let mut residual = 0.0f64;

        for _iter in 0..max_iters {
            iters += 1;
            for gi in 0..n_groups {
                let ph = &workload[gi].app.phases[phase_info[gi].0];
                access_rate[gi] = freq_hz / cpi[gi] * ph.accesses_per_instr;
            }
            // Per-instance access rates, owner resolved by scan.
            let inst_rate: Vec<f64> = (0..n_inst).map(|ii| access_rate[owner[ii]]).collect();

            if !llc_partitioned {
                naive_occupancy_step(cap, &inst_rate, owner, mrcs, &mut occ);
            }
            for gi in 0..n_groups {
                // First instance of the group, found the slow way.
                let ii = owner
                    .iter()
                    .position(|&o| o == gi)
                    .expect("every group has at least one instance");
                miss_rate[gi] = mrcs[gi].miss_rate(occ[ii] as u64);
            }

            let mut bw = 0.0;
            let mut streams = 0usize;
            for gi in 0..n_groups {
                let miss_per_sec = access_rate[gi] * miss_rate[gi];
                bw += workload[gi].count as f64 * miss_per_sec * MISS_BYTES;
                if miss_per_sec > 1e5 {
                    streams += workload[gi].count;
                }
            }
            latency_ns = self.dram_latency_ns(bw, streams);

            let mut max_rel = 0.0f64;
            for gi in 0..n_groups {
                let ph = &workload[gi].app.phases[phase_info[gi].0];
                let stall_cycles_per_instr =
                    ph.accesses_per_instr * miss_rate[gi] * (latency_ns * 1e-9 * freq_hz) / ph.mlp;
                let target = ph.cpi_base + stall_cycles_per_instr;
                let next = 0.5 * cpi[gi] + 0.5 * target;
                max_rel = max_rel.max(((next - cpi[gi]) / cpi[gi]).abs());
                cpi[gi] = next;
            }
            residual = max_rel;
            if max_rel < FP_TOLERANCE {
                residual = 0.0;
                break;
            }
        }

        let mut ips = vec![0.0f64; n_groups];
        let mut occ_per_instance = vec![0.0f64; n_groups];
        for gi in 0..n_groups {
            ips[gi] = freq_hz / cpi[gi];
            let ii = owner
                .iter()
                .position(|&o| o == gi)
                .expect("every group has at least one instance");
            occ_per_instance[gi] = occ[ii];
        }
        (
            ips,
            miss_rate,
            occ_per_instance,
            latency_ns,
            iters,
            residual,
        )
    }

    /// DRAM latency from the spec's queueing model, written out from its
    /// definition: `L_idle + min(L_queue·ρ/(1−ρ), L_max) + bank(s)` with
    /// `ρ = clamp(offered/peak, 0, 0.99)` and a saturating-exponential
    /// bank-conflict term.
    fn dram_latency_ns(&self, offered_bytes_per_sec: f64, streams: usize) -> f64 {
        let d = &self.spec.dram;
        let rho = (offered_bytes_per_sec.max(0.0) / d.peak_bw_bytes_per_sec).clamp(0.0, 0.99);
        let queue = (d.queue_latency_ns * rho / (1.0 - rho)).min(d.max_queue_ns);
        let bank = if streams <= 1 {
            0.0
        } else {
            let x = (streams - 1) as f64 / d.banks as f64;
            d.bank_penalty_ns * d.banks as f64 * 0.5 * (1.0 - (-2.0 * x).exp())
        };
        d.idle_latency_ns + queue + bank
    }
}

/// One damped LLC-occupancy update, written out from its definition:
/// insertion rates at current shares, shares moved halfway toward
/// insertion-proportional targets (floored), then renormalized to fill
/// the cache exactly. Instance `ii`'s MRC is its owner group's.
fn naive_occupancy_step(
    capacity_bytes: u64,
    inst_rate: &[f64],
    owner: &[usize],
    mrcs: &[MissRateCurve],
    occ: &mut [f64],
) -> f64 {
    let n = inst_rate.len();
    let cap = capacity_bytes as f64;
    const DAMPING: f64 = 0.5;
    let floor = (cap * 1e-4).min(cap / (4.0 * n as f64));

    let ins: Vec<f64> = inst_rate
        .iter()
        .zip(occ.iter())
        .enumerate()
        .map(|(ii, (r, &o))| r.max(0.0) * mrcs[owner[ii]].miss_rate(o as u64).max(1e-9))
        .collect();
    let ins_total: f64 = ins.iter().sum();
    if ins_total <= 0.0 {
        return 0.0;
    }
    let mut max_delta = 0.0f64;
    for i in 0..n {
        let target = (cap * ins[i] / ins_total).max(floor);
        let next = occ[i] + DAMPING * (target - occ[i]);
        max_delta = max_delta.max((next - occ[i]).abs());
        occ[i] = next;
    }
    let sum: f64 = occ.iter().sum();
    for o in occ.iter_mut() {
        *o *= cap / sum;
    }
    max_delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use coloc_machine::{presets, Machine};
    use coloc_workloads::suite;

    fn workload(target: &str, co: &[(&str, usize)]) -> Vec<RunnerGroup> {
        let mut wl = vec![RunnerGroup::solo(scaled(target))];
        for &(name, count) in co {
            wl.push(RunnerGroup {
                app: scaled(name),
                count,
            });
        }
        wl
    }

    fn scaled(name: &str) -> coloc_machine::AppProfile {
        let mut app = suite::by_name(name).expect("app in suite").app;
        app.instructions *= 0.01;
        app
    }

    #[test]
    fn matches_engine_bit_for_bit_on_a_contended_mix() {
        let spec = presets::xeon_e5649();
        let m = Machine::new(spec.clone()).unwrap();
        let r = RefEngine::new(spec).unwrap();
        let wl = workload("canneal", &[("cg", 3)]);
        let opts = RunOptions {
            pstate: 2,
            seed: 11,
            noise_sigma: 0.008,
            ..Default::default()
        };
        let a = m.run(&wl, &opts).unwrap();
        let b = r.run(&wl, &opts).unwrap();
        assert_eq!(a.wall_time_s.to_bits(), b.wall_time_s.to_bits());
        assert_eq!(a.segments, b.segments);
        assert_eq!(a.fp_iterations, b.fp_iterations);
        for (ca, cb) in a.counters.iter().zip(&b.counters) {
            assert_eq!(ca.cycles.to_bits(), cb.cycles.to_bits());
            assert_eq!(ca.llc_misses.to_bits(), cb.llc_misses.to_bits());
        }
    }

    #[test]
    fn mirrors_engine_errors() {
        let spec = presets::xeon_e5649();
        let m = Machine::new(spec.clone()).unwrap();
        let r = RefEngine::new(spec).unwrap();
        let wl = workload("ep", &[("cg", 9)]);
        let opts = RunOptions::default();
        assert_eq!(
            m.run(&wl, &opts).unwrap_err(),
            r.run(&wl, &opts).unwrap_err()
        );
        let wl = workload("ep", &[]);
        let opts = RunOptions {
            pstate: 17,
            ..Default::default()
        };
        assert_eq!(
            m.run(&wl, &opts).unwrap_err(),
            r.run(&wl, &opts).unwrap_err()
        );
    }

    #[test]
    fn rejects_invalid_spec() {
        let mut spec = presets::xeon_e5649();
        spec.cores = 0;
        assert!(matches!(
            RefEngine::new(spec),
            Err(MachineError::InvalidSpec(_))
        ));
    }
}
