//! The reference engine: a deliberately naive re-implementation of
//! [`coloc_machine::engine::Machine::run`].
//!
//! The optimized engine earns its speed through data-structure tricks —
//! a per-run [`RunScratch`] so the segment loop allocates nothing, MRCs
//! cloned into instance slots only when a group's phase changes, a
//! `group_first` index replacing owner scans, and a memoizing `RunCache`
//! in front of the whole thing. None of those tricks may change a single
//! bit of the answer: within a segment the contention fixed point is a
//! pure function of the phase parameters, and across segments the only
//! carried state is per-group progress, the CPI warm start, and the
//! accumulated counters.
//!
//! `RefEngine` re-derives everything from first principles every segment:
//!
//! * fresh allocations for every per-segment vector (occupancy, rates,
//!   instance tables) — no scratch reuse;
//! * miss-rate curves recomputed from the stack-distance distribution at
//!   the top of every segment — no incremental MRC caching;
//! * owner lookups by linear `position()` scans — O(groups × instances);
//! * the DRAM latency and LLC occupancy formulas written out inline from
//!   their definitions rather than through `MemorySystem` /
//!   `occupancy_step`, so a regression in either substrate crate is also
//!   caught;
//! * no memoization anywhere.
//!
//! Because both engines evaluate the same real-number formulas in the
//! same order, their outcomes agree *bit for bit*; the differential
//! harness in this crate's tests asserts agreement to 1e-9 relative on
//! every field and on derived slowdowns, which the bit-identity satisfies
//! with the entire tolerance left as headroom for future refactors that
//! legitimately reassociate arithmetic.
//!
//! [`RunScratch`]: coloc_machine::engine::Machine

use coloc_cachesim::MissRateCurve;
use coloc_machine::engine::{GroupRef, FP_TOLERANCE};
use coloc_machine::event::{self, EventKind, GroupSchedule};
use coloc_machine::{
    Convergence, CounterBlock, FaultPlan, MachineError, MachineSpec, Result, RunOptions,
    RunOutcome, RunnerGroup,
};
use rand::Rng as _;
use rand::SeedableRng as _;

/// Per-segment iteration cap for a full solve. Mirrors the optimized
/// engine's private constant; if the engine's cap ever drifts, the
/// differential suite fails on any scenario whose fixed point is still
/// moving at iteration 250 — exactly the alarm we want.
const MAX_FP_ITERS: u64 = 250;
/// Per-segment floor once the fixed-point budget is exhausted (mirrors
/// the engine's private `DEGRADED_FP_ITERS`).
const DEGRADED_FP_ITERS: u64 = 4;

/// Bytes transferred per LLC miss (mirrors `coloc_memsys::MISS_BYTES`,
/// spelled out here so the oracle does not read the optimized constant).
const MISS_BYTES: f64 = 64.0;

/// The naive oracle. Holds only the static machine description.
#[derive(Clone, Debug)]
pub struct RefEngine {
    spec: MachineSpec,
}

impl RefEngine {
    /// Build a reference engine over a validated spec.
    pub fn new(spec: MachineSpec) -> Result<RefEngine> {
        spec.validate().map_err(MachineError::InvalidSpec)?;
        if spec.dram.peak_bw_bytes_per_sec <= 0.0 || spec.dram.idle_latency_ns <= 0.0 {
            return Err(MachineError::InvalidSpec(
                "DRAM peak bandwidth and idle latency must be positive".into(),
            ));
        }
        Ok(RefEngine { spec })
    }

    /// The machine's spec.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// Run `workload` (group 0 = target) exactly as the optimized engine
    /// would, recomputing all derived state from scratch each segment.
    /// The lockstep entry point: event semantics with no events.
    pub fn run(&self, workload: &[RunnerGroup], opts: &RunOptions) -> Result<RunOutcome> {
        self.run_scheduled(workload, None, opts)
    }

    /// Run `workload` under per-group event schedules, mirroring
    /// `Machine::run_scheduled` in deliberately naive form: the next
    /// event is found by a full linear scan over a plain list instead of
    /// a heap, the resident set and every per-segment table are
    /// re-derived from scratch each segment instead of once per era, and
    /// owner lookups stay `position()` scans. Schedule validation and
    /// the peak-residency capacity check are shared verbatim with the
    /// optimized engine so both reject exactly the same inputs with
    /// exactly the same typed error.
    pub fn run_scheduled(
        &self,
        workload: &[RunnerGroup],
        schedules: Option<&[GroupSchedule]>,
        opts: &RunOptions,
    ) -> Result<RunOutcome> {
        if workload.is_empty() {
            return Err(MachineError::EmptyWorkload);
        }
        let group_refs: Vec<GroupRef<'_>> = workload.iter().map(GroupRef::from_group).collect();
        if let Some(s) = schedules {
            event::validate_schedules(&group_refs, s)?;
        }
        // Canonical form: an all-default schedule set is lockstep.
        let sched: Option<&[GroupSchedule]> = match schedules {
            Some(s) if !event::schedules_are_default(Some(s)) => Some(s),
            _ => None,
        };
        let requested: usize = match sched {
            Some(s) => event::peak_cores(&group_refs, s),
            None => workload.iter().map(|g| g.count).sum(),
        };
        if requested > self.spec.cores {
            return Err(MachineError::NotEnoughCores {
                requested,
                available: self.spec.cores,
            });
        }
        let freq_hz = self
            .spec
            .freq_hz(opts.pstate)
            .ok_or(MachineError::BadPState {
                index: opts.pstate,
                available: self.spec.num_pstates(),
            })?;
        for g in workload {
            if g.count == 0 {
                return Err(MachineError::BadProfile(format!(
                    "{}: group count is zero",
                    g.app.name
                )));
            }
            g.app.validate().map_err(MachineError::BadProfile)?;
        }

        let n_groups = workload.len();
        let mut progress = vec![0.0f64; n_groups];
        let mut counters = vec![CounterBlock::default(); n_groups];
        let mut share_time_acc = vec![0.0f64; n_groups];
        let mut latency_time_acc = 0.0f64;
        let mut wall = 0.0f64;
        let mut segments = 0usize;
        let mut fp_iterations = 0u64;
        let mut degraded = false;
        let mut worst_residual = 0.0f64;
        // The CPI warm start is semantics, not an optimization: segment N's
        // solve starts from segment N−1's converged CPI, so the oracle must
        // carry it too.
        let mut cpi: Vec<f64> = workload.iter().map(|g| g.app.phases[0].cpi_base).collect();

        // Pending events as a flat `(tick, seq, kind)` list in the same
        // insertion order the optimized queue uses — all departures
        // before all arrivals, each in group order — with every "pop"
        // re-scanning the whole list for the minimum `(tick, seq)`.
        let mut events: Vec<(f64, u64, EventKind)> = Vec::new();
        let mut resident = vec![true; n_groups];
        if let Some(s) = sched {
            let mut seq = 0u64;
            for (g, gs) in s.iter().enumerate() {
                if let Some(t) = gs.departure_tick {
                    events.push((t, seq, EventKind::Departure(g)));
                    seq += 1;
                }
            }
            for (g, gs) in s.iter().enumerate() {
                if gs.arrival_tick > 0.0 {
                    events.push((gs.arrival_tick, seq, EventKind::Arrival(g)));
                    seq += 1;
                }
            }
            // Initially-resident groups start at their phase offset with
            // the matching CPI warm start.
            for (g, gs) in s.iter().enumerate() {
                resident[g] = gs.arrival_tick == 0.0;
                if resident[g] {
                    let start = gs.phase_offset * workload[g].app.instructions;
                    progress[g] = start;
                    cpi[g] = workload[g].app.phases[workload[g].app.phase_at(start).0].cpi_base;
                }
            }
        }

        loop {
            segments += 1;
            if segments > opts.max_segments {
                // Typed in lockstep with the engine: the differential suite
                // requires errors, not just outcomes, to match exactly.
                return Err(MachineError::SegmentOverflow {
                    segments,
                    cap: opts.max_segments,
                });
            }

            // Everything below is rebuilt from scratch: the resident set,
            // phases, MRCs, instance tables, occupancy.
            let active: Vec<usize> = (0..n_groups).filter(|&g| resident[g]).collect();
            let era_wl: Vec<GroupRef<'_>> = active.iter().map(|&g| group_refs[g]).collect();
            let phase_info: Vec<(usize, f64)> = era_wl
                .iter()
                .zip(&active)
                .map(|(g, &gi)| g.app.phase_at(progress[gi]))
                .collect();
            let mrcs: Vec<MissRateCurve> = era_wl
                .iter()
                .enumerate()
                .map(|(i, g)| g.app.phases[phase_info[i].0].dist.miss_rate_curve())
                .collect();
            // One entry per core-resident instance: its owning group
            // (index into the resident set).
            let owner: Vec<usize> = era_wl
                .iter()
                .enumerate()
                .flat_map(|(i, g)| std::iter::repeat_n(i, g.count))
                .collect();
            // Per-group effective frequency: chip clock × clock ratio
            // (×1.0 is bit-identical to the chip clock for lockstep).
            let freqs: Vec<f64> = active
                .iter()
                .map(|&g| match sched {
                    Some(s) => freq_hz * s[g].clock_ratio,
                    None => freq_hz,
                })
                .collect();

            let iter_cap = if opts.fp_budget == 0 {
                MAX_FP_ITERS
            } else {
                let remaining = opts.fp_budget.saturating_sub(fp_iterations);
                remaining.clamp(DEGRADED_FP_ITERS, MAX_FP_ITERS)
            };
            // Fold the resident groups' CPI warm starts in and out around
            // the solve (bitwise copies, exactly like the engine's era
            // fold).
            let mut acpi: Vec<f64> = active.iter().map(|&g| cpi[g]).collect();
            let (ips, miss_rate, occ_per_instance, latency_ns, iters, residual) = self
                .solve_segment_naive(
                    &era_wl,
                    &phase_info,
                    &mrcs,
                    &owner,
                    &freqs,
                    opts.llc_partitioned,
                    &mut acpi,
                    iter_cap,
                );
            for (i, &g) in active.iter().enumerate() {
                cpi[g] = acpi[i];
            }
            fp_iterations += iters;
            if residual >= FP_TOLERANCE {
                degraded = true;
                worst_residual = worst_residual.max(residual);
            }

            let mut dt = f64::INFINITY;
            for (i, &g) in active.iter().enumerate() {
                let remaining = phase_info[i].1 - progress[g];
                let t = remaining / ips[i];
                if t < dt {
                    dt = t;
                }
            }
            // The next scheduled event caps the segment — strictly-less,
            // so a phase boundary landing exactly on the tick takes the
            // boundary path and an empty schedule (cap = ∞) never binds.
            let pending: Option<f64> = events.iter().map(|&(t, _, _)| t).min_by(f64::total_cmp);
            let dt_cap = match pending {
                Some(t) => t - wall,
                None => f64::INFINITY,
            };
            let event_capped = dt_cap < dt;
            let dt = if event_capped { dt_cap } else { dt };
            if !(dt.is_finite() && dt > 0.0) {
                return Err(MachineError::Numeric(format!(
                    "degenerate segment dt = {dt} at segment {segments}"
                )));
            }

            for (i, &g) in active.iter().enumerate() {
                let instr = ips[i] * dt;
                progress[g] += instr;
                let acc = instr * era_wl[i].app.phases[phase_info[i].0].accesses_per_instr;
                counters[g].instructions += instr;
                counters[g].cycles += freqs[i] * dt;
                counters[g].llc_accesses += acc;
                counters[g].llc_misses += acc * miss_rate[i];
                share_time_acc[g] += occ_per_instance[i] * dt;
            }
            latency_time_acc += latency_ns * dt;
            wall += dt;

            let mut target_done = false;
            for (i, &g) in active.iter().enumerate() {
                let boundary = phase_info[i].1;
                if progress[g] >= boundary - 1e-6 * era_wl[i].app.instructions.max(1.0) {
                    progress[g] = boundary;
                    if (boundary - era_wl[i].app.instructions).abs()
                        < 1e-9 * era_wl[i].app.instructions
                    {
                        counters[g].completed_runs += 1;
                        if g == 0 {
                            target_done = true;
                        } else {
                            progress[g] = 0.0;
                        }
                    }
                }
            }

            // Dispatch events once the clock reaches the next tick —
            // either because the segment was cut at the tick (snap the
            // clock exactly) or because a phase boundary landed on or
            // past it. Fired events are applied in `(tick, seq)` order,
            // each found by a fresh full scan.
            let fire = match pending {
                Some(t) => event_capped || wall >= t,
                None => false,
            };
            if fire {
                if event_capped {
                    wall = pending.expect("capped segment implies a pending event");
                }
                while let Some(idx) = (0..events.len()).min_by(|&a, &b| {
                    events[a]
                        .0
                        .total_cmp(&events[b].0)
                        .then(events[a].1.cmp(&events[b].1))
                }) {
                    if events[idx].0 > wall {
                        break;
                    }
                    let (_, _, kind) = events.remove(idx);
                    if target_done {
                        // The run is over; the queue drains but residency
                        // no longer changes (the engine discards its
                        // fired list the same way).
                        continue;
                    }
                    match kind {
                        EventKind::Departure(g) => resident[g] = false,
                        EventKind::Arrival(g) => {
                            resident[g] = true;
                            let s = &sched.expect("arrival events imply schedules")[g];
                            let start = s.phase_offset * workload[g].app.instructions;
                            progress[g] = start;
                            cpi[g] =
                                workload[g].app.phases[workload[g].app.phase_at(start).0].cpi_base;
                        }
                    }
                }
            }
            if target_done {
                break;
            }
        }

        let mut wall_measured = wall;
        if opts.noise_sigma > 0.0 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(opts.seed);
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen::<f64>();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            let scale = (opts.noise_sigma * z).exp();
            wall_measured *= scale;
            for c in counters.iter_mut() {
                c.cycles *= scale;
            }
        }

        Ok(RunOutcome {
            wall_time_s: wall_measured,
            counters,
            segments,
            fp_iterations,
            avg_llc_share_bytes: share_time_acc.iter().map(|&s| s / wall).collect(),
            avg_mem_latency_ns: latency_time_acc / wall,
            convergence: if degraded {
                Convergence::Degraded {
                    fp_iterations,
                    residual: worst_residual,
                }
            } else {
                Convergence::Converged
            },
            faults: Vec::new(),
        })
    }

    /// Run and then inject faults, mirroring `RunCache::run_with_faults`
    /// (which applies the plan with the run's noise seed as the stream).
    pub fn run_faulted(
        &self,
        workload: &[RunnerGroup],
        opts: &RunOptions,
        plan: Option<&FaultPlan>,
    ) -> Result<RunOutcome> {
        self.run_scheduled_faulted(workload, None, opts, plan)
    }

    /// [`RefEngine::run_scheduled`] followed by fault injection,
    /// mirroring `RunCache::run_scheduled_with_faults`.
    pub fn run_scheduled_faulted(
        &self,
        workload: &[RunnerGroup],
        schedules: Option<&[GroupSchedule]>,
        opts: &RunOptions,
        plan: Option<&FaultPlan>,
    ) -> Result<RunOutcome> {
        let mut outcome = self.run_scheduled(workload, schedules, opts)?;
        if let Some(plan) = plan {
            plan.apply(opts.seed, &mut outcome);
        }
        Ok(outcome)
    }

    /// Solve one segment's contention fixed point with per-call
    /// allocations and linear scans. Returns
    /// `(ips, miss_rate, occ_per_instance, latency_ns, iters, residual)`,
    /// the first three indexed per group.
    #[allow(clippy::too_many_arguments, clippy::type_complexity)]
    fn solve_segment_naive(
        &self,
        workload: &[GroupRef<'_>],
        phase_info: &[(usize, f64)],
        mrcs: &[MissRateCurve],
        owner: &[usize],
        freqs: &[f64],
        llc_partitioned: bool,
        cpi: &mut [f64],
        max_iters: u64,
    ) -> (Vec<f64>, Vec<f64>, Vec<f64>, f64, u64, f64) {
        let n_groups = workload.len();
        let cap = self.spec.llc_bytes;
        let n_inst = owner.len();

        let mut occ: Vec<f64> = vec![cap as f64 / n_inst as f64; n_inst];
        let mut access_rate = vec![0.0f64; n_groups];
        let mut miss_rate = vec![0.0f64; n_groups];
        let mut latency_ns = self.spec.dram.idle_latency_ns;
        let mut iters = 0u64;
        let mut residual = 0.0f64;

        for _iter in 0..max_iters {
            iters += 1;
            for gi in 0..n_groups {
                let ph = &workload[gi].app.phases[phase_info[gi].0];
                access_rate[gi] = freqs[gi] / cpi[gi] * ph.accesses_per_instr;
            }
            // Per-instance access rates, owner resolved by scan.
            let inst_rate: Vec<f64> = (0..n_inst).map(|ii| access_rate[owner[ii]]).collect();

            if !llc_partitioned {
                naive_occupancy_step(cap, &inst_rate, owner, mrcs, &mut occ);
            }
            for gi in 0..n_groups {
                // First instance of the group, found the slow way.
                let ii = owner
                    .iter()
                    .position(|&o| o == gi)
                    .expect("every group has at least one instance");
                miss_rate[gi] = mrcs[gi].miss_rate(occ[ii] as u64);
            }

            let mut bw = 0.0;
            let mut streams = 0usize;
            for gi in 0..n_groups {
                let miss_per_sec = access_rate[gi] * miss_rate[gi];
                bw += workload[gi].count as f64 * miss_per_sec * MISS_BYTES;
                if miss_per_sec > 1e5 {
                    streams += workload[gi].count;
                }
            }
            latency_ns = self.dram_latency_ns(bw, streams);

            let mut max_rel = 0.0f64;
            for gi in 0..n_groups {
                let ph = &workload[gi].app.phases[phase_info[gi].0];
                let stall_cycles_per_instr =
                    ph.accesses_per_instr * miss_rate[gi] * (latency_ns * 1e-9 * freqs[gi])
                        / ph.mlp;
                let target = ph.cpi_base + stall_cycles_per_instr;
                let next = 0.5 * cpi[gi] + 0.5 * target;
                max_rel = max_rel.max(((next - cpi[gi]) / cpi[gi]).abs());
                cpi[gi] = next;
            }
            residual = max_rel;
            if max_rel < FP_TOLERANCE {
                residual = 0.0;
                break;
            }
        }

        let mut ips = vec![0.0f64; n_groups];
        let mut occ_per_instance = vec![0.0f64; n_groups];
        for gi in 0..n_groups {
            ips[gi] = freqs[gi] / cpi[gi];
            let ii = owner
                .iter()
                .position(|&o| o == gi)
                .expect("every group has at least one instance");
            occ_per_instance[gi] = occ[ii];
        }
        (
            ips,
            miss_rate,
            occ_per_instance,
            latency_ns,
            iters,
            residual,
        )
    }

    /// DRAM latency from the spec's queueing model, written out from its
    /// definition: `L_idle + min(L_queue·ρ/(1−ρ), L_max) + bank(s)` with
    /// `ρ = clamp(offered/peak, 0, 0.99)` and a saturating-exponential
    /// bank-conflict term.
    fn dram_latency_ns(&self, offered_bytes_per_sec: f64, streams: usize) -> f64 {
        let d = &self.spec.dram;
        let rho = (offered_bytes_per_sec.max(0.0) / d.peak_bw_bytes_per_sec).clamp(0.0, 0.99);
        let queue = (d.queue_latency_ns * rho / (1.0 - rho)).min(d.max_queue_ns);
        let bank = if streams <= 1 {
            0.0
        } else {
            let x = (streams - 1) as f64 / d.banks as f64;
            d.bank_penalty_ns * d.banks as f64 * 0.5 * (1.0 - (-2.0 * x).exp())
        };
        d.idle_latency_ns + queue + bank
    }
}

/// One damped LLC-occupancy update, written out from its definition:
/// insertion rates at current shares, shares moved halfway toward
/// insertion-proportional targets (floored), then renormalized to fill
/// the cache exactly. Instance `ii`'s MRC is its owner group's.
fn naive_occupancy_step(
    capacity_bytes: u64,
    inst_rate: &[f64],
    owner: &[usize],
    mrcs: &[MissRateCurve],
    occ: &mut [f64],
) -> f64 {
    let n = inst_rate.len();
    let cap = capacity_bytes as f64;
    const DAMPING: f64 = 0.5;
    let floor = (cap * 1e-4).min(cap / (4.0 * n as f64));

    let ins: Vec<f64> = inst_rate
        .iter()
        .zip(occ.iter())
        .enumerate()
        .map(|(ii, (r, &o))| r.max(0.0) * mrcs[owner[ii]].miss_rate(o as u64).max(1e-9))
        .collect();
    let ins_total: f64 = ins.iter().sum();
    if ins_total <= 0.0 {
        return 0.0;
    }
    let mut max_delta = 0.0f64;
    for i in 0..n {
        let target = (cap * ins[i] / ins_total).max(floor);
        let next = occ[i] + DAMPING * (target - occ[i]);
        max_delta = max_delta.max((next - occ[i]).abs());
        occ[i] = next;
    }
    let sum: f64 = occ.iter().sum();
    for o in occ.iter_mut() {
        *o *= cap / sum;
    }
    max_delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use coloc_machine::{presets, Machine};
    use coloc_workloads::suite;

    fn workload(target: &str, co: &[(&str, usize)]) -> Vec<RunnerGroup> {
        let mut wl = vec![RunnerGroup::solo(scaled(target))];
        for &(name, count) in co {
            wl.push(RunnerGroup {
                app: scaled(name),
                count,
            });
        }
        wl
    }

    fn scaled(name: &str) -> coloc_machine::AppProfile {
        let mut app = suite::by_name(name).expect("app in suite").app;
        app.instructions *= 0.01;
        app
    }

    #[test]
    fn matches_engine_bit_for_bit_on_a_contended_mix() {
        let spec = presets::xeon_e5649();
        let m = Machine::new(spec.clone()).unwrap();
        let r = RefEngine::new(spec).unwrap();
        let wl = workload("canneal", &[("cg", 3)]);
        let opts = RunOptions {
            pstate: 2,
            seed: 11,
            noise_sigma: 0.008,
            ..Default::default()
        };
        let a = m.run(&wl, &opts).unwrap();
        let b = r.run(&wl, &opts).unwrap();
        assert_eq!(a.wall_time_s.to_bits(), b.wall_time_s.to_bits());
        assert_eq!(a.segments, b.segments);
        assert_eq!(a.fp_iterations, b.fp_iterations);
        for (ca, cb) in a.counters.iter().zip(&b.counters) {
            assert_eq!(ca.cycles.to_bits(), cb.cycles.to_bits());
            assert_eq!(ca.llc_misses.to_bits(), cb.llc_misses.to_bits());
        }
    }

    #[test]
    fn matches_engine_bit_for_bit_on_an_event_schedule() {
        let spec = presets::xeon_e5649();
        let m = Machine::new(spec.clone()).unwrap();
        let r = RefEngine::new(spec).unwrap();
        let wl = workload("canneal", &[("cg", 2), ("mg", 2)]);
        let sched = [
            GroupSchedule::default(),
            GroupSchedule {
                phase_offset: 0.25,
                arrival_tick: 0.05,
                departure_tick: Some(0.6),
                clock_ratio: 0.8,
            },
            GroupSchedule {
                arrival_tick: 0.2,
                clock_ratio: 1.25,
                ..Default::default()
            },
        ];
        let opts = RunOptions {
            pstate: 1,
            seed: 7,
            noise_sigma: 0.004,
            ..Default::default()
        };
        let a = m.run_scheduled(&wl, Some(&sched), &opts).unwrap();
        let b = r.run_scheduled(&wl, Some(&sched), &opts).unwrap();
        assert_eq!(a.wall_time_s.to_bits(), b.wall_time_s.to_bits());
        assert_eq!(a.segments, b.segments);
        assert_eq!(a.fp_iterations, b.fp_iterations);
        assert_eq!(
            a.avg_mem_latency_ns.to_bits(),
            b.avg_mem_latency_ns.to_bits()
        );
        for (ca, cb) in a.counters.iter().zip(&b.counters) {
            assert_eq!(ca.instructions.to_bits(), cb.instructions.to_bits());
            assert_eq!(ca.cycles.to_bits(), cb.cycles.to_bits());
            assert_eq!(ca.llc_misses.to_bits(), cb.llc_misses.to_bits());
            assert_eq!(ca.completed_runs, cb.completed_runs);
        }
    }

    #[test]
    fn mirrors_engine_errors_on_schedules() {
        let spec = presets::xeon_e5649();
        let m = Machine::new(spec.clone()).unwrap();
        let r = RefEngine::new(spec).unwrap();
        let wl = workload("ep", &[("cg", 2)]);
        let opts = RunOptions::default();
        // Malformed schedule: both engines reject with the same error.
        let bad = [
            GroupSchedule::default(),
            GroupSchedule {
                phase_offset: 2.0,
                ..Default::default()
            },
        ];
        assert_eq!(
            m.run_scheduled(&wl, Some(&bad), &opts).unwrap_err(),
            r.run_scheduled(&wl, Some(&bad), &opts).unwrap_err()
        );
        // Oversubscribed *concurrent* residency: overlapping windows on
        // a 6-core machine.
        let wl = workload("ep", &[("cg", 4), ("mg", 4)]);
        let over = [
            GroupSchedule::default(),
            GroupSchedule {
                departure_tick: Some(1.0),
                ..Default::default()
            },
            GroupSchedule {
                arrival_tick: 0.5,
                ..Default::default()
            },
        ];
        let ea = m.run_scheduled(&wl, Some(&over), &opts).unwrap_err();
        assert_eq!(ea, r.run_scheduled(&wl, Some(&over), &opts).unwrap_err());
        assert!(matches!(ea, MachineError::NotEnoughCores { .. }));
        // Disjoint windows fit: departure frees the cores first.
        let fits = [
            GroupSchedule::default(),
            GroupSchedule {
                departure_tick: Some(0.5),
                ..Default::default()
            },
            GroupSchedule {
                arrival_tick: 0.5,
                ..Default::default()
            },
        ];
        let a = m.run_scheduled(&wl, Some(&fits), &opts).unwrap();
        let b = r.run_scheduled(&wl, Some(&fits), &opts).unwrap();
        assert_eq!(a.wall_time_s.to_bits(), b.wall_time_s.to_bits());
    }

    #[test]
    fn mirrors_engine_errors() {
        let spec = presets::xeon_e5649();
        let m = Machine::new(spec.clone()).unwrap();
        let r = RefEngine::new(spec).unwrap();
        let wl = workload("ep", &[("cg", 9)]);
        let opts = RunOptions::default();
        assert_eq!(
            m.run(&wl, &opts).unwrap_err(),
            r.run(&wl, &opts).unwrap_err()
        );
        let wl = workload("ep", &[]);
        let opts = RunOptions {
            pstate: 17,
            ..Default::default()
        };
        assert_eq!(
            m.run(&wl, &opts).unwrap_err(),
            r.run(&wl, &opts).unwrap_err()
        );
    }

    #[test]
    fn rejects_invalid_spec() {
        let mut spec = presets::xeon_e5649();
        spec.cores = 0;
        assert!(matches!(
            RefEngine::new(spec),
            Err(MachineError::InvalidSpec(_))
        ));
    }
}
