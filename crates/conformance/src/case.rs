//! Conformance scenarios: a serializable case description, a seeded
//! generator, and a deterministic shrinker.
//!
//! A [`CorpusCase`] names everything a differential or metamorphic check
//! needs — machine, target, co-runner groups, P-state, run options, fault
//! preset — in terms of the standard workload suite, so a case is a small
//! JSON document rather than a dump of profile tables. Cases materialize
//! into engine inputs via [`CorpusCase::build`].
//!
//! Apps are scaled by a shared `instr_scale` so a case simulates in
//! milliseconds; one scale for every app in the case preserves the
//! duration *ratios* that determine segment structure, so scaled cases
//! exercise the same code paths as paper-sized runs.

use coloc_machine::{
    presets, FaultPlan, GroupSchedule, MachineSpec, RunOptions, RunnerGroup, ScenarioIr,
};
use coloc_workloads::suite;
use rand::rngs::StdRng;
use rand::Rng as _;
use rand::SeedableRng as _;
use serde::{Deserialize, Serialize};

/// One co-runner group of a case.
///
/// The four optional fields are the event-mode schedule: all `None`
/// (the only state pre-event corpus JSON can express) is exactly the
/// lockstep contract, and lowers to *no* [`GroupSchedule`] at all, so
/// old cases digest and run bit-identically to before.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CoGroup {
    /// Suite application name.
    pub app: String,
    /// Instances (one core each).
    pub count: usize,
    /// Starting phase offset in `[0, 1)` (fraction of the app's
    /// instructions, first pass only).
    pub phase_offset: Option<f64>,
    /// Arrival tick, seconds of simulated time (`None` or 0 = present
    /// from the start).
    pub arrival: Option<f64>,
    /// Departure tick, seconds of simulated time (`None` = stays for
    /// the whole run).
    pub departure: Option<f64>,
    /// Per-core clock ratio (`None` = the chip clock).
    pub clock_ratio: Option<f64>,
}

impl CoGroup {
    /// A lockstep co group: no event schedule.
    pub fn plain(app: impl Into<String>, count: usize) -> CoGroup {
        CoGroup {
            app: app.into(),
            count,
            phase_offset: None,
            arrival: None,
            departure: None,
            clock_ratio: None,
        }
    }

    /// True when any event-mode field deviates from lockstep.
    pub fn has_schedule(&self) -> bool {
        self.phase_offset.is_some()
            || self.arrival.is_some()
            || self.departure.is_some()
            || self.clock_ratio.is_some()
    }

    /// The [`GroupSchedule`] this group lowers to.
    pub fn schedule(&self) -> GroupSchedule {
        GroupSchedule {
            phase_offset: self.phase_offset.unwrap_or(0.0),
            arrival_tick: self.arrival.unwrap_or(0.0),
            departure_tick: self.departure,
            clock_ratio: self.clock_ratio.unwrap_or(1.0),
        }
    }
}

/// A named fault-plan preset, serializable without embedding rate tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultSpec {
    /// A plan that can never fire (exercises the no-op fast path and the
    /// cache-key canonicalization of no-op plans).
    Noop {
        /// Plan seed.
        seed: u64,
    },
    /// [`FaultPlan::light`].
    Light {
        /// Plan seed.
        seed: u64,
    },
    /// [`FaultPlan::heavy`].
    Heavy {
        /// Plan seed.
        seed: u64,
    },
}

impl FaultSpec {
    /// Materialize the preset.
    pub fn plan(&self) -> FaultPlan {
        match *self {
            FaultSpec::Noop { seed } => FaultPlan {
                seed,
                ..FaultPlan::default()
            },
            FaultSpec::Light { seed } => FaultPlan::light(seed),
            FaultSpec::Heavy { seed } => FaultPlan::heavy(seed),
        }
    }
}

/// One conformance scenario, the unit the corpus persists and replays.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CorpusCase {
    /// Case name (generator index or counterexample tag).
    pub name: String,
    /// Machine key: any preset key accepted by [`machine_spec`].
    pub machine: String,
    /// Target application (suite name).
    pub target: String,
    /// Co-runner groups (may be empty: a solo case).
    pub co: Vec<CoGroup>,
    /// P-state index.
    pub pstate: usize,
    /// Run seed (noise + fault stream).
    pub seed: u64,
    /// Lognormal noise σ (0 = noiseless).
    pub noise_sigma: f64,
    /// Shared instruction-count scale applied to every app in the case.
    pub instr_scale: f64,
    /// Statically way-partition the LLC.
    pub llc_partitioned: bool,
    /// Fixed-point iteration budget (0 = unlimited).
    pub fp_budget: u64,
    /// Optional fault-plan preset.
    pub faults: Option<FaultSpec>,
    /// When set, replay re-checks this metamorphic law instead of the
    /// differential oracle (shrunk law counterexamples carry their law).
    pub law: Option<String>,
}

/// Engine-ready inputs materialized from a case.
///
/// The fields are views into [`BuiltCase::ir`], the canonical
/// [`ScenarioIr`] the case lowers to — kept as owned copies so existing
/// call sites (the differential oracle, law checks) stay untouched.
#[derive(Clone, Debug)]
pub struct BuiltCase {
    /// The machine spec.
    pub spec: MachineSpec,
    /// Group 0 = target, then the co groups.
    pub workload: Vec<RunnerGroup>,
    /// Run options.
    pub opts: RunOptions,
    /// Fault plan, if any.
    pub plan: Option<FaultPlan>,
    /// Event schedules (one per group), if any group deviates from
    /// lockstep.
    pub schedules: Option<Vec<GroupSchedule>>,
    /// The canonical scenario IR the fields above were derived from.
    pub ir: ScenarioIr,
}

/// Resolve a machine key to its preset spec (the two Table IV platforms
/// plus the fleet-expansion parts).
pub fn machine_spec(key: &str) -> Result<MachineSpec, String> {
    match key {
        "e5649" => Ok(presets::xeon_e5649()),
        "e5_2697v2" => Ok(presets::xeon_e5_2697v2()),
        "e5_2630v3" => Ok(presets::xeon_e5_2630v3()),
        "platinum_8153" => Ok(presets::xeon_platinum_8153()),
        other => Err(format!(
            "unknown machine key {other:?} (expected \"e5649\", \"e5_2697v2\", \
             \"e5_2630v3\", or \"platinum_8153\")"
        )),
    }
}

fn scaled_app(name: &str, scale: f64) -> Result<coloc_machine::AppProfile, String> {
    let mut app = suite::by_name(name)
        .ok_or_else(|| format!("unknown suite app {name:?}"))?
        .app;
    if !(scale > 0.0 && scale.is_finite()) {
        return Err(format!(
            "instr_scale must be positive and finite, got {scale}"
        ));
    }
    app.instructions *= scale;
    Ok(app)
}

impl CorpusCase {
    /// Lower the case to the canonical [`ScenarioIr`]. Fails on unknown
    /// machine or app names and degenerate scales; over-subscription and
    /// similar workload problems are left for the engines (both must
    /// reject them identically — that, too, is conformance surface).
    pub fn to_ir(&self) -> Result<ScenarioIr, String> {
        let spec = machine_spec(&self.machine)?;
        let mut workload = vec![RunnerGroup::solo(scaled_app(
            &self.target,
            self.instr_scale,
        )?)];
        for g in &self.co {
            workload.push(RunnerGroup {
                app: scaled_app(&g.app, self.instr_scale)?,
                count: g.count,
            });
        }
        let opts = RunOptions {
            pstate: self.pstate,
            seed: self.seed,
            noise_sigma: self.noise_sigma,
            llc_partitioned: self.llc_partitioned,
            fp_budget: self.fp_budget,
            ..Default::default()
        };
        let mut ir = ScenarioIr::new(spec, workload, opts);
        if let Some(f) = &self.faults {
            ir = ir.with_faults(f.plan());
        }
        if self.co.iter().any(CoGroup::has_schedule) {
            let mut schedules = vec![GroupSchedule::default()];
            schedules.extend(self.co.iter().map(CoGroup::schedule));
            ir = ir.with_schedules(schedules);
        }
        Ok(ir)
    }

    /// Materialize the case into engine inputs, via [`CorpusCase::to_ir`].
    pub fn build(&self) -> Result<BuiltCase, String> {
        let ir = self.to_ir()?;
        Ok(BuiltCase {
            spec: ir.machine.clone(),
            workload: ir.workload.clone(),
            opts: ir.opts,
            plan: ir.faults,
            schedules: ir.schedules.clone(),
            ir,
        })
    }

    /// Total co-runner instances.
    pub fn co_instances(&self) -> usize {
        self.co.iter().map(|g| g.count).sum()
    }

    /// One-line human description.
    pub fn describe(&self) -> String {
        let co = if self.co.is_empty() {
            "solo".to_string()
        } else {
            self.co
                .iter()
                .map(|g| format!("{}x{}", g.count, g.app))
                .collect::<Vec<_>>()
                .join("+")
        };
        let mut extras = Vec::new();
        if self.noise_sigma > 0.0 {
            extras.push("noise".to_string());
        }
        if self.llc_partitioned {
            extras.push("partitioned".to_string());
        }
        if self.fp_budget > 0 {
            extras.push(format!("budget={}", self.fp_budget));
        }
        if let Some(f) = &self.faults {
            extras.push(format!("{f:?}").to_lowercase());
        }
        if self.co.iter().any(CoGroup::has_schedule) {
            extras.push("events".to_string());
        }
        let extras = if extras.is_empty() {
            String::new()
        } else {
            format!(" [{}]", extras.join(", "))
        };
        format!(
            "{}: {} vs {} @P{} on {}{}",
            self.name, self.target, co, self.pstate, self.machine, extras
        )
    }
}

const APP_NAMES: [&str; 11] = [
    "cg",
    "streamcluster",
    "mg",
    "sp",
    "canneal",
    "ft",
    "fluidanimate",
    "bodytrack",
    "ua",
    "blackscholes",
    "ep",
];

const SCALES: [f64; 3] = [0.01, 0.02, 0.05];

/// Constraints a law imposes on generated cases (the differential sweep
/// uses the permissive default).
#[derive(Clone, Copy, Debug)]
pub struct GenConstraints {
    /// Permit fault presets.
    pub allow_faults: bool,
    /// Permit measurement noise.
    pub allow_noise: bool,
    /// Permit a finite fixed-point budget.
    pub allow_fp_budget: bool,
    /// Cores to leave unused (a law that *adds* a co-runner needs one).
    pub reserve_cores: usize,
    /// Minimum number of co-runner groups.
    pub min_co_groups: usize,
    /// Permit event schedules on co groups (staggered starts, mid-run
    /// arrival/departure, per-core clock ratios).
    pub allow_events: bool,
}

impl Default for GenConstraints {
    fn default() -> GenConstraints {
        GenConstraints {
            allow_faults: true,
            allow_noise: true,
            allow_fp_budget: true,
            reserve_cores: 0,
            min_co_groups: 0,
            allow_events: true,
        }
    }
}

/// Generate one case from a seed, deterministically. The same `(seed,
/// constraints)` always yields the same case, independent of everything
/// else the process has done — cases are addressable by seed alone, which
/// is what makes shrunk counterexamples and corpus replay stable.
pub fn gen_case(seed: u64, cons: &GenConstraints) -> CorpusCase {
    let mut rng = StdRng::seed_from_u64(seed);
    let machine = if rng.gen_bool(0.5) {
        "e5649"
    } else {
        "e5_2697v2"
    };
    let cores = if machine == "e5649" { 6 } else { 12 };
    let target = APP_NAMES[rng.gen_range(0..APP_NAMES.len())];

    let free = cores - 1 - cons.reserve_cores.min(cores - 1);
    let n_groups = if free == 0 {
        0
    } else {
        let roll = rng.gen_range(0..10u32);
        let wish = if roll < 2 {
            0
        } else if roll < 7 || free < 2 {
            1
        } else {
            2
        };
        wish.max(cons.min_co_groups)
    };

    let mut co = Vec::new();
    let mut used = 0usize;
    for g in 0..n_groups {
        let remaining = free - used;
        if remaining == 0 {
            break;
        }
        // Later groups must leave at least one core per group still to come.
        let still_to_come = n_groups - g - 1;
        let max_here = remaining.saturating_sub(still_to_come).max(1);
        let count = rng.gen_range(1..=max_here);
        let mut app = APP_NAMES[rng.gen_range(0..APP_NAMES.len())];
        // Distinct apps per group keep permutation checks meaningful.
        while co.iter().any(|c: &CoGroup| c.app == app) {
            app = APP_NAMES[rng.gen_range(0..APP_NAMES.len())];
        }
        co.push(CoGroup::plain(app, count));
        used += count;
    }

    let pstate = rng.gen_range(0..6usize);
    let noise_sigma = if cons.allow_noise && rng.gen_bool(0.5) {
        0.008
    } else {
        0.0
    };
    let instr_scale = SCALES[rng.gen_range(0..SCALES.len())];
    let llc_partitioned = rng.gen_bool(0.1);
    let fp_budget = if cons.allow_fp_budget && rng.gen_bool(0.15) {
        [32u64, 200, 1000][rng.gen_range(0..3usize)]
    } else {
        0
    };
    let faults = if cons.allow_faults {
        match rng.gen_range(0..10u32) {
            7 => Some(FaultSpec::Noop { seed: rng.gen() }),
            8 => Some(FaultSpec::Light { seed: rng.gen() }),
            9 => Some(FaultSpec::Heavy { seed: rng.gen() }),
            _ => None,
        }
    } else {
        None
    };
    let run_seed: u64 = rng.gen();

    // Event-mode families, drawn strictly *after* every lockstep field so
    // a given generator seed keeps its pre-event machine/workload/options
    // unchanged. Every value comes from an exact-binary-fraction palette:
    // the f64s print as finite decimals and JSON round-trips are exact.
    if cons.allow_events && !co.is_empty() && rng.gen_bool(0.45) {
        const OFFSETS: [f64; 5] = [0.125, 0.25, 0.375, 0.5, 0.75];
        const ARRIVALS: [f64; 4] = [0.0078125, 0.015625, 0.03125, 0.0625];
        const STAYS: [f64; 4] = [0.015625, 0.0625, 0.125, 0.25];
        const CLOCKS: [f64; 4] = [0.5, 0.75, 1.25, 1.5];
        for g in co.iter_mut() {
            // Staggered start: begin mid-app.
            if rng.gen_bool(0.4) {
                g.phase_offset = Some(OFFSETS[rng.gen_range(0..OFFSETS.len())]);
            }
            // Mid-run arrival.
            if rng.gen_bool(0.35) {
                g.arrival = Some(ARRIVALS[rng.gen_range(0..ARRIVALS.len())]);
            }
            // Mid-run departure, always after the arrival (exact sums of
            // exact binary fractions stay exact).
            if rng.gen_bool(0.35) {
                g.departure = Some(g.arrival.unwrap_or(0.0) + STAYS[rng.gen_range(0..STAYS.len())]);
            }
            // Per-core clock ratio.
            if rng.gen_bool(0.4) {
                g.clock_ratio = Some(CLOCKS[rng.gen_range(0..CLOCKS.len())]);
            }
        }
    }

    CorpusCase {
        name: format!("gen-{seed:016x}"),
        machine: machine.to_string(),
        target: target.to_string(),
        co,
        pstate,
        seed: run_seed,
        noise_sigma,
        instr_scale,
        llc_partitioned,
        fp_budget,
        faults,
        law: None,
    }
}

/// Generate `n` cases from a base seed (case `i` uses `base_seed + i`,
/// so any failing case can be regenerated from its index alone).
pub fn gen_cases(base_seed: u64, n: usize) -> Vec<CorpusCase> {
    (0..n)
        .map(|i| gen_case(base_seed.wrapping_add(i as u64), &GenConstraints::default()))
        .collect()
}

/// Deterministically shrink a failing case: repeatedly apply the first
/// simplifying transform under which `still_fails` holds, until none
/// applies. Transform order prefers structural deletions (drop a co
/// group) over parameter simplifications (noise off, faults off, P0), so
/// the minimum is small in the ways that matter for debugging.
pub fn shrink<F: Fn(&CorpusCase) -> bool>(case: &CorpusCase, still_fails: F) -> CorpusCase {
    let mut current = case.clone();
    loop {
        let mut candidates: Vec<CorpusCase> = Vec::new();
        for i in 0..current.co.len() {
            let mut c = current.clone();
            c.co.remove(i);
            candidates.push(c);
        }
        for i in 0..current.co.len() {
            if current.co[i].count >= 2 {
                let mut c = current.clone();
                c.co[i].count /= 2;
                candidates.push(c);
                let mut c = current.clone();
                c.co[i].count = 1;
                candidates.push(c);
            }
        }
        // Event-schedule simplifications: first a whole group back to
        // lockstep, then one field at a time.
        for i in 0..current.co.len() {
            if current.co[i].has_schedule() {
                let mut c = current.clone();
                c.co[i].phase_offset = None;
                c.co[i].arrival = None;
                c.co[i].departure = None;
                c.co[i].clock_ratio = None;
                candidates.push(c);
            }
            if current.co[i].departure.is_some() {
                let mut c = current.clone();
                c.co[i].departure = None;
                candidates.push(c);
            }
            if current.co[i].arrival.is_some() {
                let mut c = current.clone();
                c.co[i].arrival = None;
                candidates.push(c);
            }
            if current.co[i].phase_offset.is_some() {
                let mut c = current.clone();
                c.co[i].phase_offset = None;
                candidates.push(c);
            }
            if current.co[i].clock_ratio.is_some() {
                let mut c = current.clone();
                c.co[i].clock_ratio = None;
                candidates.push(c);
            }
        }
        if current.faults.is_some() {
            let mut c = current.clone();
            c.faults = None;
            candidates.push(c);
        }
        if current.noise_sigma > 0.0 {
            let mut c = current.clone();
            c.noise_sigma = 0.0;
            candidates.push(c);
        }
        if current.fp_budget > 0 {
            let mut c = current.clone();
            c.fp_budget = 0;
            candidates.push(c);
        }
        if current.llc_partitioned {
            let mut c = current.clone();
            c.llc_partitioned = false;
            candidates.push(c);
        }
        if current.pstate != 0 {
            let mut c = current.clone();
            c.pstate = 0;
            candidates.push(c);
        }

        let next = candidates.into_iter().find(|c| still_fails(c));
        match next {
            Some(c) => current = c,
            None => break,
        }
    }
    current.name = format!("shrunk-{}", current.name);
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_buildable() {
        let a = gen_cases(42, 50);
        let b = gen_cases(42, 50);
        assert_eq!(a, b);
        for case in &a {
            let built = case.build().expect("generated cases build");
            let total: usize = built.workload.iter().map(|g| g.count).sum();
            assert!(total <= built.spec.cores, "{}", case.describe());
            assert!(built.opts.pstate < built.spec.num_pstates());
        }
    }

    #[test]
    fn generator_covers_the_interesting_axes() {
        let cases = gen_cases(7, 300);
        assert!(cases.iter().any(|c| c.machine == "e5649"));
        assert!(cases.iter().any(|c| c.machine == "e5_2697v2"));
        assert!(cases.iter().any(|c| c.co.is_empty()));
        assert!(cases.iter().any(|c| c.co.len() == 2));
        assert!(cases.iter().any(|c| c.noise_sigma > 0.0));
        assert!(cases.iter().any(|c| c.llc_partitioned));
        assert!(cases.iter().any(|c| c.fp_budget > 0));
        assert!(cases
            .iter()
            .any(|c| matches!(c.faults, Some(FaultSpec::Heavy { .. }))));
        assert!(cases
            .iter()
            .any(|c| matches!(c.faults, Some(FaultSpec::Noop { .. }))));
    }

    #[test]
    fn constraints_are_honoured() {
        let cons = GenConstraints {
            allow_faults: false,
            allow_noise: false,
            allow_fp_budget: false,
            reserve_cores: 1,
            min_co_groups: 1,
            allow_events: true,
        };
        for i in 0..200 {
            let c = gen_case(1000 + i, &cons);
            assert!(c.faults.is_none());
            assert_eq!(c.noise_sigma, 0.0);
            assert_eq!(c.fp_budget, 0);
            assert!(!c.co.is_empty());
            let cores = if c.machine == "e5649" { 6 } else { 12 };
            assert!(c.co_instances() + 2 <= cores, "{}", c.describe());
        }
    }

    #[test]
    fn shrink_reaches_a_local_minimum() {
        let case = gen_case(99, &GenConstraints::default());
        // Predicate: "fails whenever there are any co-runner instances or
        // noise" — the shrinker must strip everything else away.
        let shrunk = shrink(&case, |c| c.co_instances() > 0 || c.noise_sigma > 0.0);
        if case.co_instances() > 0 || case.noise_sigma > 0.0 {
            assert!(shrunk.faults.is_none());
            assert_eq!(shrunk.fp_budget, 0);
            assert_eq!(shrunk.pstate, 0);
            assert!(!shrunk.llc_partitioned);
        }
        // Shrinking something that "always fails" strips it bare.
        let bare = shrink(&case, |_| true);
        assert!(bare.co.is_empty());
        assert_eq!(bare.noise_sigma, 0.0);
        assert!(bare.faults.is_none());
    }

    #[test]
    fn build_is_a_view_of_the_ir() {
        for case in gen_cases(11, 30) {
            let built = case.build().expect("generated cases build");
            let ir = case.to_ir().expect("generated cases lower");
            assert_eq!(built.ir.digest(), ir.digest(), "{}", case.describe());
            // The convenience fields mirror the IR exactly.
            assert_eq!(built.workload.len(), built.ir.workload.len());
            assert_eq!(built.spec.name, built.ir.machine.name);
            assert_eq!(built.plan.is_some(), built.ir.faults.is_some());
        }
    }

    #[test]
    fn json_round_trip() {
        for case in gen_cases(5, 20) {
            let json = serde_json::to_string_pretty(&case).unwrap();
            let back: CorpusCase = serde_json::from_str(&json).unwrap();
            assert_eq!(case, back);
        }
    }

    #[test]
    fn unknown_names_fail_cleanly() {
        let mut case = gen_case(1, &GenConstraints::default());
        case.machine = "cray-1".into();
        assert!(case.build().is_err());
        let mut case = gen_case(1, &GenConstraints::default());
        case.target = "doom".into();
        assert!(case.build().is_err());
    }
}
