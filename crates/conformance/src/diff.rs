//! The differential oracle: optimized engine vs [`RefEngine`], field by
//! field.
//!
//! For every case the harness runs the full optimized stack —
//! [`RunCache::run_scheduled_with_faults`] over
//! [`coloc_machine::Machine`], twice, so both the cold engine path and
//! the memoized hit path are exercised — and the naive [`RefEngine`].
//! Event-mode cases (arrivals, departures, staggered starts, per-core
//! clocks) flow through the same comparison: the reference replays the
//! schedule naively, so the era-compacted driver has an independent
//! check. Outcomes must agree on every field to
//! [`REL_TOL`] relative (bit-equality always passes, which also handles
//! NaN wall times from injected faults), and the derived *slowdown*
//! (co-located wall time over solo wall time, both sides computed by
//! their own engine) must agree to [`SLOWDOWN_REL_TOL`].

use crate::case::{gen_case, shrink, CorpusCase, GenConstraints};
use crate::refengine::RefEngine;
use coloc_machine::{Convergence, Machine, RunCache, RunOutcome, RunnerGroup};

/// Relative tolerance for per-field outcome comparison.
pub const REL_TOL: f64 = 1e-9;
/// Relative tolerance for the derived slowdown (the acceptance bound).
pub const SLOWDOWN_REL_TOL: f64 = 1e-9;

/// Two floats agree when bit-identical (covers NaN, ±0, infinities) or
/// within `tol` relative of the larger magnitude.
pub fn close(a: f64, b: f64, tol: f64) -> bool {
    a.to_bits() == b.to_bits() || (a - b).abs() <= tol * a.abs().max(b.abs())
}

fn field(errors: &mut Vec<String>, name: &str, a: f64, b: f64) {
    if !close(a, b, REL_TOL) {
        errors.push(format!("{name}: engine {a:?} vs reference {b:?}"));
    }
}

/// Compare two outcomes field by field; returns the list of mismatches
/// (empty = conformant).
pub fn compare_outcomes(engine: &RunOutcome, reference: &RunOutcome) -> Vec<String> {
    let mut errors = Vec::new();
    field(
        &mut errors,
        "wall_time_s",
        engine.wall_time_s,
        reference.wall_time_s,
    );
    if engine.segments != reference.segments {
        errors.push(format!(
            "segments: {} vs {}",
            engine.segments, reference.segments
        ));
    }
    if engine.fp_iterations != reference.fp_iterations {
        errors.push(format!(
            "fp_iterations: {} vs {}",
            engine.fp_iterations, reference.fp_iterations
        ));
    }
    if engine.counters.len() != reference.counters.len() {
        errors.push(format!(
            "counters length: {} vs {}",
            engine.counters.len(),
            reference.counters.len()
        ));
        return errors;
    }
    for (gi, (ca, cb)) in engine.counters.iter().zip(&reference.counters).enumerate() {
        field(
            &mut errors,
            &format!("counters[{gi}].instructions"),
            ca.instructions,
            cb.instructions,
        );
        field(
            &mut errors,
            &format!("counters[{gi}].cycles"),
            ca.cycles,
            cb.cycles,
        );
        field(
            &mut errors,
            &format!("counters[{gi}].llc_accesses"),
            ca.llc_accesses,
            cb.llc_accesses,
        );
        field(
            &mut errors,
            &format!("counters[{gi}].llc_misses"),
            ca.llc_misses,
            cb.llc_misses,
        );
        if ca.completed_runs != cb.completed_runs {
            errors.push(format!(
                "counters[{gi}].completed_runs: {} vs {}",
                ca.completed_runs, cb.completed_runs
            ));
        }
    }
    for (gi, (&sa, &sb)) in engine
        .avg_llc_share_bytes
        .iter()
        .zip(&reference.avg_llc_share_bytes)
        .enumerate()
    {
        field(&mut errors, &format!("avg_llc_share_bytes[{gi}]"), sa, sb);
    }
    field(
        &mut errors,
        "avg_mem_latency_ns",
        engine.avg_mem_latency_ns,
        reference.avg_mem_latency_ns,
    );
    match (engine.convergence, reference.convergence) {
        (Convergence::Converged, Convergence::Converged) => {}
        (
            Convergence::Degraded {
                fp_iterations: ia,
                residual: ra,
            },
            Convergence::Degraded {
                fp_iterations: ib,
                residual: rb,
            },
        ) => {
            if ia != ib || !close(ra, rb, REL_TOL) {
                errors.push(format!(
                    "degraded convergence: ({ia}, {ra}) vs ({ib}, {rb})"
                ));
            }
        }
        (a, b) => errors.push(format!("convergence: {a:?} vs {b:?}")),
    }
    if engine.faults != reference.faults {
        errors.push(format!(
            "faults: {:?} vs {:?}",
            engine.faults, reference.faults
        ));
    }
    errors
}

/// True when every f64 field matches bit for bit (the cache-hit check).
pub fn outcomes_bit_identical(a: &RunOutcome, b: &RunOutcome) -> bool {
    a.wall_time_s.to_bits() == b.wall_time_s.to_bits()
        && a.segments == b.segments
        && a.fp_iterations == b.fp_iterations
        && a.counters.len() == b.counters.len()
        && a.counters.iter().zip(&b.counters).all(|(x, y)| {
            x.instructions.to_bits() == y.instructions.to_bits()
                && x.cycles.to_bits() == y.cycles.to_bits()
                && x.llc_accesses.to_bits() == y.llc_accesses.to_bits()
                && x.llc_misses.to_bits() == y.llc_misses.to_bits()
                && x.completed_runs == y.completed_runs
        })
        && a.avg_llc_share_bytes.len() == b.avg_llc_share_bytes.len()
        && a.avg_llc_share_bytes
            .iter()
            .zip(&b.avg_llc_share_bytes)
            .all(|(x, y)| x.to_bits() == y.to_bits())
        && a.avg_mem_latency_ns.to_bits() == b.avg_mem_latency_ns.to_bits()
        && a.faults == b.faults
}

/// What one differential check observed.
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// Case description.
    pub case: String,
    /// Target slowdown from the optimized stack (NaN when faulted away).
    pub slowdown_engine: f64,
    /// Target slowdown from the reference engine.
    pub slowdown_ref: f64,
    /// Both engines rejected the workload (with the same error).
    pub rejected: bool,
}

/// Run the differential oracle on one case.
///
/// Errors describe the first divergence found: a field mismatch, a
/// slowdown gap beyond tolerance, a cache hit that is not bit-identical
/// to the cold run, or the two engines disagreeing about whether the
/// workload is even valid.
pub fn check_case(case: &CorpusCase) -> Result<DiffReport, String> {
    let built = case.build()?;
    let machine =
        Machine::new(built.spec.clone()).map_err(|e| format!("machine rejected spec: {e}"))?;
    let reference =
        RefEngine::new(built.spec.clone()).map_err(|e| format!("reference rejected spec: {e}"))?;
    let cache = RunCache::new(64);

    let engine_result = cache.run_scheduled_with_faults(
        &machine,
        &built.workload,
        built.schedules.as_deref(),
        &built.opts,
        built.plan.as_ref(),
    );
    let ref_result = reference.run_scheduled_faulted(
        &built.workload,
        built.schedules.as_deref(),
        &built.opts,
        built.plan.as_ref(),
    );

    let (engine_out, _) = match (engine_result, ref_result) {
        (Err(ea), Err(eb)) => {
            if ea == eb {
                return Ok(DiffReport {
                    case: case.describe(),
                    slowdown_engine: f64::NAN,
                    slowdown_ref: f64::NAN,
                    rejected: true,
                });
            }
            return Err(format!(
                "divergent errors: engine {ea:?} vs reference {eb:?}"
            ));
        }
        (Ok(_), Err(e)) => return Err(format!("reference errored, engine did not: {e:?}")),
        (Err(e), Ok(_)) => return Err(format!("engine errored, reference did not: {e:?}")),
        (Ok(pair), Ok(ref_out)) => {
            let errors = compare_outcomes(&pair.0, &ref_out);
            if !errors.is_empty() {
                return Err(format!(
                    "outcome mismatch on {}:\n  {}",
                    case.describe(),
                    errors.join("\n  ")
                ));
            }
            (pair.0, ref_out)
        }
    };

    // The memoized path must replay the cold outcome bit for bit.
    let (hit_out, was_hit) = cache
        .run_scheduled_with_faults(
            &machine,
            &built.workload,
            built.schedules.as_deref(),
            &built.opts,
            built.plan.as_ref(),
        )
        .map_err(|e| format!("cache replay errored: {e}"))?;
    if !was_hit {
        return Err("second identical run missed the cache".into());
    }
    if !outcomes_bit_identical(&engine_out, &hit_out) {
        return Err("cache hit is not bit-identical to the cold run".into());
    }

    // Derived slowdown: each side computes its own solo baseline (clean —
    // baselines sit below the fault layer, as in `Lab`).
    let solo_wl: Vec<RunnerGroup> = built.workload[..1].to_vec();
    let engine_solo = machine
        .run(&solo_wl, &built.opts)
        .map_err(|e| format!("engine solo baseline failed: {e}"))?;
    let ref_solo = reference
        .run(&solo_wl, &built.opts)
        .map_err(|e| format!("reference solo baseline failed: {e}"))?;
    let slowdown_engine = engine_out.wall_time_s / engine_solo.wall_time_s;
    let slowdown_ref = hit_out.wall_time_s / ref_solo.wall_time_s;
    if !close(slowdown_engine, slowdown_ref, SLOWDOWN_REL_TOL) {
        return Err(format!(
            "slowdown diverged on {}: engine {slowdown_engine:?} vs reference {slowdown_ref:?}",
            case.describe()
        ));
    }

    Ok(DiffReport {
        case: case.describe(),
        slowdown_engine,
        slowdown_ref,
        rejected: false,
    })
}

/// Aggregate results of a differential sweep.
#[derive(Clone, Debug, Default)]
pub struct DiffSummary {
    /// Cases checked.
    pub cases: usize,
    /// Cases whose outcome carried at least one injected fault.
    pub faulted: usize,
    /// Cases that ran with a finite fixed-point budget.
    pub budgeted: usize,
    /// Solo cases (slowdown ≈ 1 expected).
    pub solo: usize,
    /// Cases carrying an event schedule (arrival, departure, staggered
    /// start, or per-core clock on at least one group).
    pub events: usize,
    /// Largest observed |slowdown_engine − slowdown_ref| / slowdown.
    pub max_slowdown_gap: f64,
}

/// A differential failure, already shrunk to a local minimum.
#[derive(Clone, Debug)]
pub struct DiffFailure {
    /// The shrunk failing case.
    pub case: CorpusCase,
    /// The divergence the shrunk case exhibits.
    pub detail: String,
}

/// Sweep `n` generated cases from `base_seed` on one thread; the first
/// failure is shrunk and returned. Equivalent to
/// [`differential_sweep_threaded`] with `threads = 1`.
pub fn differential_sweep(base_seed: u64, n: usize) -> Result<DiffSummary, Box<DiffFailure>> {
    differential_sweep_threaded(base_seed, n, 1)
}

/// Sweep `n` generated cases from `base_seed` across `threads` workers
/// (0 = one per core, capped at `n`).
///
/// Each case is independent, so the sweep fans out over the
/// work-stealing pool and aggregates in index order — the summary and
/// the chosen failure are identical to a sequential sweep. On failure
/// the lowest-index failing case is shrunk (sequentially; shrinking is
/// a chain of dependent re-checks) and returned.
pub fn differential_sweep_threaded(
    base_seed: u64,
    n: usize,
    threads: usize,
) -> Result<DiffSummary, Box<DiffFailure>> {
    let results = coloc_ml::parallel::run_indexed(n, threads, |i| {
        let case = gen_case(base_seed.wrapping_add(i as u64), &GenConstraints::default());
        let result = check_case(&case);
        (case, result)
    });

    let mut summary = DiffSummary::default();
    for (case, result) in results {
        match result {
            Ok(report) => {
                summary.cases += 1;
                if case.faults.is_some() {
                    summary.faulted += 1;
                }
                if case.fp_budget > 0 {
                    summary.budgeted += 1;
                }
                if case.co.is_empty() {
                    summary.solo += 1;
                }
                if case.co.iter().any(crate::case::CoGroup::has_schedule) {
                    summary.events += 1;
                }
                if report.slowdown_engine.is_finite() && report.slowdown_ref.is_finite() {
                    let denom = report.slowdown_engine.abs().max(report.slowdown_ref.abs());
                    if denom > 0.0 {
                        let gap = (report.slowdown_engine - report.slowdown_ref).abs() / denom;
                        summary.max_slowdown_gap = summary.max_slowdown_gap.max(gap);
                    }
                }
            }
            Err(_) => {
                let shrunk = shrink(&case, |c| check_case(c).is_err());
                let detail = check_case(&shrunk)
                    .err()
                    .unwrap_or_else(|| "shrunk case no longer fails (flaky check?)".into());
                return Err(Box::new(DiffFailure {
                    case: shrunk,
                    detail,
                }));
            }
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn close_handles_special_values() {
        assert!(close(f64::NAN, f64::NAN, 0.0));
        assert!(close(0.0, 0.0, 0.0));
        assert!(close(1.0, 1.0 + 1e-12, 1e-9));
        assert!(!close(1.0, 1.01, 1e-9));
        assert!(close(f64::INFINITY, f64::INFINITY, 0.0));
    }

    #[test]
    fn a_single_case_passes_end_to_end() {
        let case = gen_case(12345, &GenConstraints::default());
        let report = check_case(&case).expect("differential check passes");
        assert!(report.rejected || report.slowdown_ref.is_nan() || report.slowdown_ref > 0.0);
    }

    #[test]
    fn staged_driver_matches_the_reference_bit_for_bit_across_the_corpus() {
        // The refactored engine is staged (explicit `EpochStage` passes)
        // and era-compacted for event schedules; the reference still
        // walks the pre-refactor monolithic loop, naively re-deriving
        // the resident set every segment. Across 220 generated scenarios
        // — faults, noise, budgets, partitioning, event schedules, both
        // machines — every outcome (or rejection) must match bit for
        // bit, not just within tolerance.
        let cases = crate::case::gen_cases(0xD1FF, 220);
        let failures: Vec<String> = coloc_ml::parallel::run_indexed(cases.len(), 0, |i| {
            let case = &cases[i];
            let built = case.build().expect("generated cases build");
            let machine = Machine::new(built.spec.clone()).unwrap();
            let reference = RefEngine::new(built.spec.clone()).unwrap();
            let cache = RunCache::new(4);
            let engine = cache.run_scheduled_with_faults(
                &machine,
                &built.workload,
                built.schedules.as_deref(),
                &built.opts,
                built.plan.as_ref(),
            );
            let refd = reference.run_scheduled_faulted(
                &built.workload,
                built.schedules.as_deref(),
                &built.opts,
                built.plan.as_ref(),
            );
            match (engine, refd) {
                (Ok((a, _)), Ok(b)) if outcomes_bit_identical(&a, &b) => None,
                (Err(ea), Err(eb)) if ea == eb => None,
                (a, b) => Some(format!(
                    "{}: engine {a:?} vs reference {b:?}",
                    case.describe()
                )),
            }
        })
        .into_iter()
        .flatten()
        .collect();
        assert!(
            failures.is_empty(),
            "{} divergences:\n{}",
            failures.len(),
            failures.join("\n")
        );
    }

    #[test]
    fn detects_a_tampered_reference() {
        // Sanity-check that the comparator actually bites: compare an
        // outcome against a perturbed copy of itself.
        let case = gen_case(7, &GenConstraints::default());
        let built = case.build().unwrap();
        let machine = Machine::new(built.spec.clone()).unwrap();
        let out = machine.run(&built.workload, &built.opts).unwrap();
        let mut bad = out.clone();
        bad.wall_time_s *= 1.0 + 1e-6;
        let errors = compare_outcomes(&out, &bad);
        assert!(
            errors.iter().any(|e| e.contains("wall_time_s")),
            "{errors:?}"
        );
        assert!(compare_outcomes(&out, &out).is_empty());
    }
}
