//! Metamorphic laws for the fleet-placement simulation.
//!
//! The engine laws in [`crate::laws`] pin the *simulator*; these pin the
//! *placement layer* built on top of it (`crates/placement`). Each law is
//! a relation the placement model makes exact by construction, so the
//! checks compare outcome digests bit-for-bit (or against zero exactly)
//! rather than within tolerances:
//!
//! 1. **Job-permutation invariance**: within a wave, jobs are placed in
//!    canonical (app, index) order, so a single-wave stream's scored
//!    outcome is a pure function of its job *multiset* — any permutation
//!    of the stream yields a bit-identical outcome.
//! 2. **Solo regret is exactly zero**: with at most one job per socket,
//!    least-interference spreads every job solo (an empty socket's
//!    predicted delta is exactly 1.0 and ties break toward fewer
//!    occupants); predicted and measured slowdowns are both exactly 1.0,
//!    so regret, unfairness and QoS violations are all exactly zero.
//! 3. **An empty machine never hurts**: growing a single-spec fleet by
//!    one socket leaves pack-first-fit's single-wave outcome bit-identical
//!    (first-fit never reaches the new socket) and never worsens the
//!    interference-aware policies' oracle mean slowdown (one more empty
//!    socket only widens their choice of solo placements).
//!
//! [`PlacementCase`] cannot ride the engine corpus' `CorpusCase` (it
//! describes a fleet and a stream, not one scenario), so placement laws
//! carry their own case type, deterministic shrinker, and corpus
//! subdirectory (`corpus/placement/`) — same discipline, parallel rails.

use crate::case::machine_spec;
use crate::corpus::VerifyReport;
use coloc_placement::{
    ClassMix, FleetSpec, JobStream, PlacePolicy, PlacementSim, PolicyOutcome, SimConfig,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom as _;
use rand::Rng as _;
use rand::SeedableRng as _;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// A self-contained placement scenario: single-spec fleet, seeded
/// stream, one policy, and the law that owns it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlacementCase {
    /// Stream / sim seed.
    pub seed: u64,
    /// Machine preset key (accepted by [`machine_spec`]).
    pub machine: String,
    /// Sockets in the (single-group) fleet.
    pub sockets: usize,
    /// Class-mix weights.
    pub mix: [f64; 4],
    /// Jobs in the stream.
    pub jobs: usize,
    /// Policy name (accepted by [`PlacePolicy::by_name`]).
    pub policy: String,
    /// Which placement law this case belongs to (tags corpus replays).
    pub law: Option<String>,
}

impl PlacementCase {
    /// One-line human description.
    pub fn describe(&self) -> String {
        format!(
            "seed={:#x} machine={} sockets={} jobs={} policy={} mix={:?}",
            self.seed, self.machine, self.sockets, self.jobs, self.policy, self.mix
        )
    }

    fn fleet(&self) -> Result<FleetSpec, String> {
        Ok(FleetSpec::single(
            machine_spec(&self.machine)?,
            self.sockets,
        ))
    }

    fn sim(&self) -> Result<PlacementSim, String> {
        self.sim_with_sockets(self.sockets)
    }

    fn sim_with_sockets(&self, sockets: usize) -> Result<PlacementSim, String> {
        let cfg = SimConfig {
            fleet: FleetSpec::single(machine_spec(&self.machine)?, sockets),
            jobs: self.jobs,
            mix: ClassMix { weights: self.mix },
            seed: self.seed,
            pstate: 0,
            qos_threshold: 1.5,
            noise_sigma: None,
            threads: 1,
        };
        PlacementSim::new(cfg).map_err(|e| format!("sim construction failed: {e}"))
    }

    fn policy(&self) -> Result<PlacePolicy, String> {
        PlacePolicy::by_name(&self.policy)
    }

    fn stream(&self) -> Result<Vec<u8>, String> {
        let suite = coloc_workloads::standard();
        Ok(JobStream::new(self.seed, ClassMix { weights: self.mix }, &suite)?.take_jobs(self.jobs))
    }
}

/// One placement invariant, checkable from a seed — the placement-side
/// analogue of [`crate::laws::Law`].
pub trait PlacementLaw: Sync {
    /// Stable kebab-case identifier.
    fn name(&self) -> &'static str;

    /// Where the invariant comes from.
    fn provenance(&self) -> &'static str;

    /// Seeds to check per test run.
    fn cases_per_run(&self) -> usize;

    /// Derive this law's case from a seed.
    fn case_for_seed(&self, seed: u64) -> PlacementCase;

    /// Check one case. Cases whose preconditions no longer hold (e.g. a
    /// shrink made the stream multi-wave) must pass vacuously, so the
    /// shrinker never escapes the law's domain.
    fn check_case(&self, case: &PlacementCase) -> Result<(), String>;
}

fn gen_base(seed: u64, law: &'static str) -> (StdRng, PlacementCase) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E3779B97F4A7C15);
    let machines = ["e5649", "e5_2697v2", "e5_2630v3", "platinum_8153"];
    let machine = machines[rng.gen_range(0..machines.len())].to_string();
    let sockets = rng.gen_range(2..=4usize);
    let mix = match rng.gen_range(0..3u8) {
        0 => ClassMix::uniform(),
        1 => ClassMix::memory_heavy(),
        _ => ClassMix::compute_heavy(),
    };
    let case = PlacementCase {
        seed,
        machine,
        sockets,
        mix: mix.weights,
        jobs: 0, // per-law
        policy: String::new(),
        law: Some(law.to_string()),
    };
    (rng, case)
}

fn outcome_bits(o: &PolicyOutcome) -> (u64, u64) {
    (o.digest(), o.determinism_digest)
}

/// Law 1: single-wave streams are permutation-invariant.
pub struct JobPermutationInvariance;

impl PlacementLaw for JobPermutationInvariance {
    fn name(&self) -> &'static str {
        "placement-permutation"
    }

    fn provenance(&self) -> &'static str {
        "canonical within-wave ordering makes a wave's outcome a pure function of its job multiset"
    }

    fn cases_per_run(&self) -> usize {
        3
    }

    fn case_for_seed(&self, seed: u64) -> PlacementCase {
        let (mut rng, mut case) = gen_base(seed, self.name());
        let spec = machine_spec(&case.machine).expect("generator uses valid keys");
        let capacity = spec.cores * case.sockets;
        case.jobs = rng.gen_range(2..=capacity);
        case.policy = ["pack-first-fit", "least-interference", "regret-batched"]
            [rng.gen_range(0..3usize)]
        .to_string();
        case
    }

    fn check_case(&self, case: &PlacementCase) -> Result<(), String> {
        let fleet = case.fleet()?;
        if case.jobs < 2 || case.jobs > fleet.total_cores() {
            return Ok(()); // out of the single-wave domain
        }
        let policy = case.policy()?;
        let jobs = case.stream()?;
        let mut permuted = jobs.clone();
        permuted.shuffle(&mut StdRng::seed_from_u64(case.seed.wrapping_add(1)));

        let mut sim = case.sim()?;
        let base = sim
            .run_policy_on_jobs(policy, jobs)
            .map_err(|e| format!("base run failed: {e}"))?;
        let shuffled = sim
            .run_policy_on_jobs(policy, permuted)
            .map_err(|e| format!("permuted run failed: {e}"))?;
        if outcome_bits(&base) != outcome_bits(&shuffled) {
            return Err(format!(
                "permuting a single-wave stream moved the outcome: \
                 regret {} vs {}, oracle mean {} vs {}, digest {:#x} vs {:#x}",
                base.regret_mean,
                shuffled.regret_mean,
                base.oracle_mean_slowdown,
                shuffled.oracle_mean_slowdown,
                base.determinism_digest,
                shuffled.determinism_digest
            ));
        }
        Ok(())
    }
}

/// Law 2: with one job per socket, regret is exactly zero.
pub struct SoloRegretZero;

impl PlacementLaw for SoloRegretZero {
    fn name(&self) -> &'static str {
        "placement-solo-regret"
    }

    fn provenance(&self) -> &'static str {
        "ratio-normalized slowdowns are exactly 1.0 solo, so all-solo placements have zero regret"
    }

    fn cases_per_run(&self) -> usize {
        3
    }

    fn case_for_seed(&self, seed: u64) -> PlacementCase {
        let (mut rng, mut case) = gen_base(seed, self.name());
        case.jobs = rng.gen_range(1..=case.sockets);
        case.policy = "least-interference".to_string();
        case
    }

    fn check_case(&self, case: &PlacementCase) -> Result<(), String> {
        if case.jobs == 0 || case.jobs > case.sockets {
            return Ok(()); // not an all-solo placement
        }
        let mut sim = case.sim()?;
        let out = sim
            .run_policy(PlacePolicy::LeastInterference)
            .map_err(|e| format!("run failed: {e}"))?;
        if out.regret_mean != 0.0
            || out.regret_max != 0.0
            || out.oracle_mean_slowdown != 1.0
            || out.unfairness != 1.0
            || out.qos_violations != 0
        {
            return Err(format!(
                "all-solo placement must score exactly clean: regret mean {} max {}, \
                 oracle mean {}, unfairness {}, QoS violations {}",
                out.regret_mean,
                out.regret_max,
                out.oracle_mean_slowdown,
                out.unfairness,
                out.qos_violations
            ));
        }
        if out.sockets_used != case.jobs {
            return Err(format!(
                "least-interference must spread {} jobs solo, used {} sockets",
                case.jobs, out.sockets_used
            ));
        }
        Ok(())
    }
}

/// Law 3: adding an empty socket never worsens the outcome.
pub struct EmptyMachineNeverHurts;

impl PlacementLaw for EmptyMachineNeverHurts {
    fn name(&self) -> &'static str {
        "placement-empty-machine"
    }

    fn provenance(&self) -> &'static str {
        "capacity is monotone: first-fit ignores the new socket, spreaders only gain options"
    }

    fn cases_per_run(&self) -> usize {
        3
    }

    fn case_for_seed(&self, seed: u64) -> PlacementCase {
        let (mut rng, mut case) = gen_base(seed, self.name());
        let spec = machine_spec(&case.machine).expect("generator uses valid keys");
        case.jobs = rng.gen_range(2..=spec.cores * case.sockets);
        case.policy =
            ["pack-first-fit", "least-interference"][rng.gen_range(0..2usize)].to_string();
        case
    }

    fn check_case(&self, case: &PlacementCase) -> Result<(), String> {
        let fleet = case.fleet()?;
        if case.jobs < 2 || case.jobs > fleet.total_cores() {
            return Ok(()); // out of the single-wave domain
        }
        let policy = case.policy()?;
        let jobs = case.stream()?;
        let mut small = case.sim()?;
        let mut grown = case.sim_with_sockets(case.sockets + 1)?;
        let base = small
            .run_policy_on_jobs(policy, jobs.clone())
            .map_err(|e| format!("base fleet run failed: {e}"))?;
        let wide = grown
            .run_policy_on_jobs(policy, jobs)
            .map_err(|e| format!("grown fleet run failed: {e}"))?;
        match policy {
            PlacePolicy::PackFirstFit => {
                // First-fit fills in socket-id order and the stream fits
                // the original fleet, so the extra socket is unreachable:
                // bit-identical outcome.
                if outcome_bits(&base) != outcome_bits(&wide) {
                    return Err(format!(
                        "an unreachable socket moved first-fit's outcome: \
                         digest {:#x} vs {:#x}, oracle mean {} vs {}",
                        base.determinism_digest,
                        wide.determinism_digest,
                        base.oracle_mean_slowdown,
                        wide.oracle_mean_slowdown
                    ));
                }
            }
            _ => {
                // Interference-aware policies may only improve (or tie)
                // on the oracle objective.
                if wide.oracle_mean_slowdown > base.oracle_mean_slowdown + 1e-9 {
                    return Err(format!(
                        "adding an empty socket worsened {}: oracle mean {} -> {}",
                        case.policy, base.oracle_mean_slowdown, wide.oracle_mean_slowdown
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Every placement law, in corpus order.
pub fn placement_laws() -> Vec<Box<dyn PlacementLaw>> {
    vec![
        Box::new(JobPermutationInvariance),
        Box::new(SoloRegretZero),
        Box::new(EmptyMachineNeverHurts),
    ]
}

/// Look a placement law up by its stable name.
pub fn placement_law_by_name(name: &str) -> Option<Box<dyn PlacementLaw>> {
    placement_laws().into_iter().find(|l| l.name() == name)
}

/// Deterministically shrink a failing placement case: repeatedly apply
/// the first simplification that still fails, until none does. Mirrors
/// [`crate::case::shrink`] for the placement case shape.
pub fn shrink_placement<F: Fn(&PlacementCase) -> bool>(
    case: &PlacementCase,
    still_fails: F,
) -> PlacementCase {
    let mut cur = case.clone();
    loop {
        let mut candidates: Vec<PlacementCase> = Vec::new();
        if cur.jobs > 1 {
            let mut halved = cur.clone();
            halved.jobs /= 2;
            candidates.push(halved);
            let mut less = cur.clone();
            less.jobs -= 1;
            candidates.push(less);
        }
        if cur.sockets > 1 {
            let mut fewer = cur.clone();
            fewer.sockets -= 1;
            candidates.push(fewer);
        }
        if cur.mix != ClassMix::uniform().weights {
            let mut plain = cur.clone();
            plain.mix = ClassMix::uniform().weights;
            candidates.push(plain);
        }
        if cur.machine != "e5649" {
            let mut small = cur.clone();
            small.machine = "e5649".to_string();
            candidates.push(small);
        }
        match candidates.into_iter().find(|c| still_fails(c)) {
            Some(next) => cur = next,
            None => return cur,
        }
    }
}

/// The placement corpus subdirectory under an engine corpus root.
pub fn placement_corpus_dir(root: &Path) -> PathBuf {
    root.join("placement")
}

/// Save a placement case as pretty JSON (trailing newline).
pub fn save_placement_case(path: &Path, case: &PlacementCase) -> Result<(), String> {
    let mut bytes = serde_json::to_vec_pretty(case).map_err(|e| e.to_string())?;
    bytes.push(b'\n');
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).map_err(|e| format!("{}: {e}", parent.display()))?;
    }
    std::fs::write(path, bytes).map_err(|e| format!("{}: {e}", path.display()))
}

/// Load one placement case.
pub fn load_placement_case(path: &Path) -> Result<PlacementCase, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
    serde_json::from_slice(&bytes).map_err(|e| format!("{}: {e}", path.display()))
}

/// Persist a shrunk placement counterexample; returns the path written.
pub fn write_placement_counterexample(
    dir: &Path,
    law: &str,
    case: &PlacementCase,
) -> Result<PathBuf, String> {
    let mut case = case.clone();
    case.law = Some(law.to_string());
    let path = dir.join(format!("counterexample-{law}-{:016x}.json", case.seed));
    save_placement_case(&path, &case)?;
    Ok(path)
}

/// Replay every placement case in `dir` (sorted by file name) through
/// its tagged law. A missing directory is an empty, clean corpus; a case
/// with no (or an unknown) law tag is a failure — placement cases are
/// meaningless without one.
pub fn verify_placement_dir(dir: &Path) -> Result<VerifyReport, String> {
    let mut paths: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect(),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(VerifyReport::default()),
        Err(e) => return Err(format!("{}: {e}", dir.display())),
    };
    paths.sort();
    let mut report = VerifyReport::default();
    for path in paths {
        let case = load_placement_case(&path)?;
        report.law_checks += 1;
        match case.law.as_deref().and_then(placement_law_by_name) {
            Some(law) => {
                if let Err(detail) = law.check_case(&case) {
                    report
                        .failures
                        .push(format!("{}: {detail}", path.display()));
                }
            }
            None => report.failures.push(format!(
                "{}: unknown or missing placement law tag {:?}",
                path.display(),
                case.law
            )),
        }
    }
    Ok(report)
}

/// The checked-in placement seed corpus: one hand-picked case per law
/// per fleet flavor. [`crate::corpus::default_corpus_dir`]`/placement`
/// holds their JSON forms; a test pins the two in sync.
pub fn placement_seed_corpus() -> Vec<(String, PlacementCase)> {
    let case = |name: &str, law: &str, machine: &str, sockets, jobs, policy: &str, mix| {
        (
            format!("seed-{name}.json"),
            PlacementCase {
                seed: 0x9A7C ^ jobs as u64,
                machine: machine.to_string(),
                sockets,
                mix,
                jobs,
                policy: policy.to_string(),
                law: Some(law.to_string()),
            },
        )
    };
    let uniform = ClassMix::uniform().weights;
    let heavy = ClassMix::memory_heavy().weights;
    vec![
        case(
            "perm-pack-6core",
            "placement-permutation",
            "e5649",
            2,
            9,
            "pack-first-fit",
            uniform,
        ),
        case(
            "perm-greedy-12core",
            "placement-permutation",
            "e5_2697v2",
            2,
            17,
            "least-interference",
            heavy,
        ),
        case(
            "perm-rb-8core",
            "placement-permutation",
            "e5_2630v3",
            2,
            11,
            "regret-batched",
            uniform,
        ),
        case(
            "solo-16core",
            "placement-solo-regret",
            "platinum_8153",
            3,
            3,
            "least-interference",
            heavy,
        ),
        case(
            "empty-pack-6core",
            "placement-empty-machine",
            "e5649",
            3,
            14,
            "pack-first-fit",
            uniform,
        ),
        case(
            "empty-greedy-8core",
            "placement-empty-machine",
            "e5_2630v3",
            2,
            13,
            "least-interference",
            heavy,
        ),
    ]
}
