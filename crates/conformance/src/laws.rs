//! Metamorphic laws: paper-derived invariants every optimization must
//! preserve.
//!
//! A differential oracle catches divergence between two implementations;
//! a metamorphic law catches both implementations being wrong the same
//! way. Each [`Law`] encodes a relation the paper's methodology takes
//! for granted:
//!
//! 1. **Monotone interference** (§IV-A, Table VI): adding a
//!    memory-intensive co-runner never *reduces* target slowdown.
//! 2. **Solo unity** (§III-A): a solo run's slowdown against its own
//!    baseline is exactly 1.
//! 3. **Permutation invariance**: co-runner *sets* determine contention;
//!    the order groups are listed in is presentation, not physics.
//! 4. **Scale invariance of MPE/NRMSE** (Eq. 2–3): both metrics are
//!    dimensionless, so uniformly rescaling times (the engine's
//!    multiplicative noise does exactly this) must not move them.
//! 5. **Feature-set nesting** (Table II): A ⊂ B ⊂ … ⊂ F, so the linear
//!    model's *train-set* fit never strictly worsens as features are
//!    added — least squares over a superset of columns cannot lose.
//! 6. **Arrival-order invariance**: swapping the arrival ticks of two
//!    interchangeable co-runner groups (same app, count, offset, clock)
//!    relabels the system without changing its physics, so the target's
//!    outcome is *bit-identical* and the twins' counters mirror.
//! 7. **Lockstep degeneracy**: an all-default event schedule is the
//!    lockstep contract — same bits out of the scheduled driver, same
//!    scenario digest.
//! 8. **Departure-at-end no-op**: a departure strictly after the target
//!    completes can never fire (segment caps use strict `<`), so it is
//!    bit-identical to no departure at all.
//! 9. **Identical-pair symmetry** (the cross-interference matrix
//!    diagonal): an app co-located with one instance of itself is a
//!    relabeling, so the two groups' per-run counters mirror bitwise.
//! 10. **Mixed-pair order invariance**: the heterogeneous per-co-runner
//!     encoding ([`coloc_model::MixFeatures`]) lowers by summing over a
//!     set; listing a mixed pair in either order yields bit-identical
//!     lowered features — which are themselves bit-identical to the
//!     legacy featurize path — and physics within tolerance.
//!
//! Scenario-based laws derive their case from the seed via the shared
//! generator, so a violation is addressable (and shrinkable) as a
//! [`CorpusCase`]; the two ML laws synthesize their inputs directly.
//! The three event laws (6–8) assert *exact* relations, so they compare
//! outcomes bit-for-bit rather than within a tolerance.

// Bounds are checked as `!(x <= tol)` on purpose: a NaN must *fail* the
// law, and the direct comparison would silently pass it.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

use crate::case::{gen_case, CoGroup, CorpusCase, GenConstraints};
use coloc_machine::{GroupSchedule, Machine, RunOutcome, RunnerGroup};
use coloc_model::{FeatureSet, Lab, ModelKind, Predictor, Scenario};
use coloc_workloads::suite;
use rand::rngs::StdRng;
use rand::Rng as _;
use rand::SeedableRng as _;

/// A law violation: what broke, on which scenario (when scenario-based).
#[derive(Clone, Debug)]
pub struct Violation {
    /// Violated law's name.
    pub law: &'static str,
    /// Human-readable account of the violation.
    pub detail: String,
    /// The offending scenario, for shrinking and corpus persistence
    /// (boxed: a case is much larger than the rest of the violation).
    pub case: Option<Box<CorpusCase>>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "law `{}` violated: {}", self.law, self.detail)?;
        if let Some(case) = &self.case {
            write!(f, " (case {})", case.describe())?;
        }
        Ok(())
    }
}

/// One metamorphic invariant, checkable from a seed.
pub trait Law: Sync {
    /// Stable kebab-case identifier (used in corpus file names and the
    /// `law` field of persisted counterexamples).
    fn name(&self) -> &'static str;

    /// Where in the paper (or pipeline) the invariant comes from.
    fn provenance(&self) -> &'static str;

    /// Seeds to check per `cargo test` run (cheap laws afford more).
    fn cases_per_run(&self) -> usize;

    /// The scenario this law derives from `seed`, when scenario-based
    /// (enables shrinking); `None` for laws over synthesized inputs.
    fn case_for_seed(&self, seed: u64) -> Option<CorpusCase>;

    /// Check one scenario. Only meaningful for scenario-based laws; the
    /// default accepts everything.
    fn check_case(&self, _case: &CorpusCase) -> Result<(), String> {
        Ok(())
    }

    /// Check the law at `seed`.
    fn check_seed(&self, seed: u64) -> Result<(), Violation> {
        match self.case_for_seed(seed) {
            Some(case) => self.check_case(&case).map_err(|detail| Violation {
                law: self.name(),
                detail,
                case: Some(Box::new(case)),
            }),
            None => Ok(()),
        }
    }
}

fn run_wall(machine: &Machine, built: &crate::case::BuiltCase) -> Result<f64, String> {
    machine
        .run(&built.workload, &built.opts)
        .map(|o| o.wall_time_s)
        .map_err(|e| format!("engine rejected law workload: {e}"))
}

fn solo_wall(machine: &Machine, built: &crate::case::BuiltCase) -> Result<f64, String> {
    machine
        .run(&built.workload[..1], &built.opts)
        .map(|o| o.wall_time_s)
        .map_err(|e| format!("engine rejected solo baseline: {e}"))
}

// ---------------------------------------------------------------------
// Law 1: adding a memory-intensive co-runner never reduces slowdown.
// ---------------------------------------------------------------------

/// See module docs, law 1.
pub struct MonotoneCoRunner;

/// The aggressor appended by [`MonotoneCoRunner`]: `cg`, the suite's
/// class-I streamer.
pub const AGGRESSOR: &str = "cg";

impl Law for MonotoneCoRunner {
    fn name(&self) -> &'static str {
        "monotone-co-runner"
    }

    fn provenance(&self) -> &'static str {
        "paper §IV-A / Table VI: degradation grows with co-runner pressure"
    }

    fn cases_per_run(&self) -> usize {
        24
    }

    fn case_for_seed(&self, seed: u64) -> Option<CorpusCase> {
        // Reserve a core for the added aggressor; faults would break
        // monotonicity by corrupting one arm, and a truncated fixed point
        // is only approximately monotone, so both are excluded. Noise is
        // fine: the same seed scales both arms identically, so it cancels
        // in the slowdown ratio. Events are excluded because this law
        // compares lockstep runs (a departing co-runner would make
        // "adding pressure" ill-defined mid-run).
        Some(gen_case(
            seed,
            &GenConstraints {
                allow_faults: false,
                allow_fp_budget: false,
                reserve_cores: 1,
                allow_events: false,
                ..Default::default()
            },
        ))
    }

    fn check_case(&self, case: &CorpusCase) -> Result<(), String> {
        let built = case.build()?;
        let machine = Machine::new(built.spec.clone()).map_err(|e| e.to_string())?;
        let base = solo_wall(&machine, &built)?;
        let before = run_wall(&machine, &built)? / base;

        let mut more = built.clone();
        let mut aggressor = suite::by_name(AGGRESSOR).expect("aggressor in suite").app;
        aggressor.instructions *= case.instr_scale;
        more.workload.push(RunnerGroup {
            app: aggressor,
            count: 1,
        });
        let after = run_wall(&machine, &more)? / base;

        if after < before - 1e-9 {
            return Err(format!(
                "slowdown fell from {before} to {after} after adding 1x {AGGRESSOR}"
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Law 2: solo slowdown is exactly 1.
// ---------------------------------------------------------------------

/// See module docs, law 2.
pub struct SoloUnity;

impl Law for SoloUnity {
    fn name(&self) -> &'static str {
        "solo-unity"
    }

    fn provenance(&self) -> &'static str {
        "paper §III-A: slowdown is defined against the solo baseline, so a solo run scores 1"
    }

    fn cases_per_run(&self) -> usize {
        24
    }

    fn case_for_seed(&self, seed: u64) -> Option<CorpusCase> {
        let mut case = gen_case(
            seed,
            &GenConstraints {
                allow_faults: false,
                ..Default::default()
            },
        );
        case.co.clear();
        Some(case)
    }

    fn check_case(&self, case: &CorpusCase) -> Result<(), String> {
        let built = case.build()?;
        let machine = Machine::new(built.spec.clone()).map_err(|e| e.to_string())?;
        // Two independent runs of the same inputs: determinism makes the
        // ratio exactly 1.0, not merely close.
        let a = run_wall(&machine, &built)?;
        let b = solo_wall(&machine, &built)?;
        let slowdown = a / b;
        if !((slowdown - 1.0).abs() <= 1e-12) {
            return Err(format!("solo slowdown is {slowdown}, expected exactly 1"));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Law 3: permuting co-runner groups is identity.
// ---------------------------------------------------------------------

/// See module docs, law 3.
pub struct PermutationInvariance;

/// Group-order permutation only reassociates floating-point reductions
/// (bandwidth sums, occupancy renormalization), so agreement is to a
/// small multiple of the fixed-point tolerance rather than bit-exact.
pub const PERMUTATION_REL_TOL: f64 = 1e-7;

impl Law for PermutationInvariance {
    fn name(&self) -> &'static str {
        "permutation-invariance"
    }

    fn provenance(&self) -> &'static str {
        "contention is a function of the co-runner *set*; listing order is presentation"
    }

    fn cases_per_run(&self) -> usize {
        16
    }

    fn case_for_seed(&self, seed: u64) -> Option<CorpusCase> {
        let mut case = gen_case(
            seed,
            &GenConstraints {
                allow_faults: false, // fault rolls index groups by position
                allow_fp_budget: false,
                min_co_groups: 2,
                allow_events: false, // this law permutes lockstep runs
                ..Default::default()
            },
        );
        if case.co.len() < 2 {
            // Small machines can run out of cores for two groups; make
            // room deterministically instead of discarding the seed.
            case.machine = "e5_2697v2".into();
            while case.co.len() < 2 {
                let app = if case.co.iter().any(|g| g.app == "ep") {
                    "canneal"
                } else {
                    "ep"
                };
                case.co.push(CoGroup::plain(app, 1));
            }
        }
        Some(case)
    }

    fn check_case(&self, case: &CorpusCase) -> Result<(), String> {
        let built = case.build()?;
        let machine = Machine::new(built.spec.clone()).map_err(|e| e.to_string())?;
        let forward = machine
            .run(&built.workload, &built.opts)
            .map_err(|e| e.to_string())?;

        let mut reversed = vec![built.workload[0].clone()];
        reversed.extend(built.workload[1..].iter().rev().cloned());
        let backward = machine
            .run(&reversed, &built.opts)
            .map_err(|e| e.to_string())?;

        let rel = (forward.wall_time_s - backward.wall_time_s).abs()
            / forward.wall_time_s.abs().max(backward.wall_time_s.abs());
        if !(rel <= PERMUTATION_REL_TOL) {
            return Err(format!(
                "target wall time moved {rel:e} relative under group permutation ({} vs {})",
                forward.wall_time_s, backward.wall_time_s
            ));
        }
        let ta = &forward.counters[0];
        let tb = &backward.counters[0];
        for (name, a, b) in [
            ("instructions", ta.instructions, tb.instructions),
            ("cycles", ta.cycles, tb.cycles),
            ("llc_misses", ta.llc_misses, tb.llc_misses),
        ] {
            let rel = (a - b).abs() / a.abs().max(b.abs()).max(1.0);
            if !(rel <= PERMUTATION_REL_TOL) {
                return Err(format!(
                    "target {name} moved {rel:e} under group permutation"
                ));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Law 4: MPE and NRMSE are scale-invariant.
// ---------------------------------------------------------------------

/// See module docs, law 4.
pub struct MetricScaleInvariance;

impl Law for MetricScaleInvariance {
    fn name(&self) -> &'static str {
        "metric-scale-invariance"
    }

    fn provenance(&self) -> &'static str {
        "paper Eq. 2–3: MPE and NRMSE are dimensionless; uniform cycle/time scaling cancels"
    }

    fn cases_per_run(&self) -> usize {
        48
    }

    fn case_for_seed(&self, _seed: u64) -> Option<CorpusCase> {
        None
    }

    fn check_seed(&self, seed: u64) -> Result<(), Violation> {
        let fail = |detail: String| Violation {
            law: self.name(),
            detail,
            case: None,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(4..40usize);
        let actual: Vec<f64> = (0..n).map(|_| rng.gen_range(50.0..1000.0)).collect();
        let predicted: Vec<f64> = actual
            .iter()
            .map(|&a| a * rng.gen_range(0.7..1.4))
            .collect();

        let mpe0 = coloc_ml::mpe(&predicted, &actual);
        let nrmse0 = coloc_ml::nrmse(&predicted, &actual);
        if !mpe0.is_finite() || !nrmse0.is_finite() {
            return Err(fail(format!(
                "metrics non-finite on clean inputs: mpe={mpe0}, nrmse={nrmse0}"
            )));
        }

        for k in [1e-3, 0.37, 1.0, 42.0, 1e4] {
            let sp: Vec<f64> = predicted.iter().map(|&v| v * k).collect();
            let sa: Vec<f64> = actual.iter().map(|&v| v * k).collect();
            let mpe_k = coloc_ml::mpe(&sp, &sa);
            let nrmse_k = coloc_ml::nrmse(&sp, &sa);
            let mpe_gap = (mpe_k - mpe0).abs() / mpe0.abs().max(1e-30);
            let nrmse_gap = (nrmse_k - nrmse0).abs() / nrmse0.abs().max(1e-30);
            if !(mpe_gap <= 1e-9) {
                return Err(fail(format!("MPE moved {mpe_gap:e} relative at scale {k}")));
            }
            if !(nrmse_gap <= 1e-9) {
                return Err(fail(format!(
                    "NRMSE moved {nrmse_gap:e} relative at scale {k}"
                )));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Law 5: nested feature sets never worsen the linear train-set fit.
// ---------------------------------------------------------------------

/// See module docs, law 5.
pub struct FeatureNesting;

impl Law for FeatureNesting {
    fn name(&self) -> &'static str {
        "feature-nesting"
    }

    fn provenance(&self) -> &'static str {
        "paper Table II: A ⊂ B ⊂ … ⊂ F; OLS train RSS is non-increasing in added columns"
    }

    fn cases_per_run(&self) -> usize {
        3
    }

    fn case_for_seed(&self, _seed: u64) -> Option<CorpusCase> {
        None
    }

    fn check_seed(&self, seed: u64) -> Result<(), Violation> {
        let fail = |detail: String| Violation {
            law: self.name(),
            detail,
            case: None,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let suite = suite::standard();
        let lab = Lab::new(coloc_machine::presets::xeon_e5649(), suite, rng.gen())
            .map_err(|e| fail(format!("lab construction failed: {e}")))?;

        // A small but well-conditioned plan: four targets across the
        // intensity classes × two co-runners × two counts × two P-states.
        let targets = ["cg", "canneal", "fluidanimate", "ep"];
        let mut scenarios = Vec::new();
        for target in targets {
            for co in ["cg", "ep"] {
                for n in [1usize, 3] {
                    for p in [0usize, 4] {
                        scenarios.push(Scenario::homogeneous(target, co, n, p));
                    }
                }
            }
        }
        let samples = lab
            .collect_scenarios(&scenarios)
            .map_err(|e| fail(format!("collection failed: {e}")))?;
        let actual: Vec<f64> = samples.iter().map(|s| s.actual_time_s).collect();

        let mut prev: Option<(FeatureSet, f64)> = None;
        for set in FeatureSet::ALL {
            let model = Predictor::train(ModelKind::Linear, set, &samples, 0)
                .map_err(|e| fail(format!("training {set} failed: {e}")))?;
            let rmse = coloc_ml::rmse(&model.predict_samples(&samples), &actual);
            if let Some((prev_set, prev_rmse)) = prev {
                if !(rmse <= prev_rmse * (1.0 + 1e-8) + 1e-9) {
                    return Err(fail(format!(
                        "train RMSE rose from {prev_rmse} ({prev_set}) to {rmse} ({set})"
                    )));
                }
            }
            prev = Some((set, rmse));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Event laws (6–8): exact relations over the scheduled driver.
// ---------------------------------------------------------------------

/// Bit-level equality of two engine outcomes. The event laws assert
/// relabelings and no-ops — relations that hold to the last bit, not
/// merely within tolerance — so any drift is a real divergence.
fn outcomes_bits_equal(what: &str, a: &RunOutcome, b: &RunOutcome) -> Result<(), String> {
    let field = |name: &str, x: f64, y: f64| -> Result<(), String> {
        if x.to_bits() != y.to_bits() {
            Err(format!("{what}: {name} differs bitwise ({x} vs {y})"))
        } else {
            Ok(())
        }
    };
    field("wall_time_s", a.wall_time_s, b.wall_time_s)?;
    field(
        "avg_mem_latency_ns",
        a.avg_mem_latency_ns,
        b.avg_mem_latency_ns,
    )?;
    if a.segments != b.segments {
        return Err(format!(
            "{what}: segment count differs ({} vs {})",
            a.segments, b.segments
        ));
    }
    if a.fp_iterations != b.fp_iterations {
        return Err(format!(
            "{what}: fp_iterations differ ({} vs {})",
            a.fp_iterations, b.fp_iterations
        ));
    }
    if a.counters.len() != b.counters.len() {
        return Err(format!("{what}: counter block counts differ"));
    }
    for (g, (ca, cb)) in a.counters.iter().zip(&b.counters).enumerate() {
        counters_bits_equal(&format!("{what}: group {g}"), ca, cb)?;
    }
    Ok(())
}

/// Bit-level equality of one pair of counter blocks.
fn counters_bits_equal(
    what: &str,
    a: &coloc_machine::CounterBlock,
    b: &coloc_machine::CounterBlock,
) -> Result<(), String> {
    for (name, x, y) in [
        ("instructions", a.instructions, b.instructions),
        ("cycles", a.cycles, b.cycles),
        ("llc_accesses", a.llc_accesses, b.llc_accesses),
        ("llc_misses", a.llc_misses, b.llc_misses),
    ] {
        if x.to_bits() != y.to_bits() {
            return Err(format!("{what}: {name} differs bitwise ({x} vs {y})"));
        }
    }
    if a.completed_runs != b.completed_runs {
        return Err(format!(
            "{what}: completed_runs differ ({} vs {})",
            a.completed_runs, b.completed_runs
        ));
    }
    Ok(())
}

/// See module docs, law 6.
pub struct ArrivalOrderInvariance;

/// Arrival ticks (seconds) assigned to the twin groups appended by
/// [`ArrivalOrderInvariance`] — exact binary fractions, so the swapped
/// case serializes and replays exactly.
pub const TWIN_ARRIVALS: [f64; 4] = [0.0078125, 0.015625, 0.03125, 0.0625];

impl ArrivalOrderInvariance {
    /// The last two co groups, when they are interchangeable twins that
    /// differ only in arrival tick. Shrinking can break the structure;
    /// a structurally-invalid case passes vacuously, so the shrinker
    /// never walks out of the law's domain chasing a bogus failure.
    fn twins(case: &CorpusCase) -> Option<(usize, usize)> {
        let n = case.co.len();
        if n < 2 {
            return None;
        }
        let (a, b) = (&case.co[n - 2], &case.co[n - 1]);
        let interchangeable = a.app == b.app
            && a.count == b.count
            && a.phase_offset == b.phase_offset
            && a.departure == b.departure
            && a.clock_ratio == b.clock_ratio;
        (interchangeable && a.arrival != b.arrival).then_some((n - 2, n - 1))
    }
}

impl Law for ArrivalOrderInvariance {
    fn name(&self) -> &'static str {
        "arrival-order-invariance"
    }

    fn provenance(&self) -> &'static str {
        "interchangeable groups are relabelable: swapping their arrival ticks moves nothing"
    }

    fn cases_per_run(&self) -> usize {
        12
    }

    fn case_for_seed(&self, seed: u64) -> Option<CorpusCase> {
        // Two cores are reserved for the twins; faults are off because
        // the law runs the bare engine (no plan application), and the
        // generator's own events are off so the only schedule in play is
        // the twins' — keeps shrunk counterexamples minimal.
        let mut case = gen_case(
            seed,
            &GenConstraints {
                allow_faults: false,
                reserve_cores: 2,
                allow_events: false,
                ..Default::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA11_0DE);
        let apps = suite::standard();
        let mut app = apps[rng.gen_range(0..apps.len())].name;
        // Twins must not collide with a generated group's app: shrinking
        // could then merge them into a false non-twin structure.
        while case.co.iter().any(|g| g.app == app) {
            app = apps[rng.gen_range(0..apps.len())].name;
        }
        let first = rng.gen_range(0..TWIN_ARRIVALS.len());
        let second = (first + 1 + rng.gen_range(0..TWIN_ARRIVALS.len() - 1)) % TWIN_ARRIVALS.len();
        let offset = if rng.gen_bool(0.5) { Some(0.25) } else { None };
        let clock = if rng.gen_bool(0.5) { Some(1.25) } else { None };
        for arrival in [TWIN_ARRIVALS[first], TWIN_ARRIVALS[second]] {
            let mut twin = CoGroup::plain(app, 1);
            twin.arrival = Some(arrival);
            twin.phase_offset = offset;
            twin.clock_ratio = clock;
            case.co.push(twin);
        }
        Some(case)
    }

    fn check_case(&self, case: &CorpusCase) -> Result<(), String> {
        let Some((i, j)) = Self::twins(case) else {
            return Ok(()); // vacuous: shrinking removed the twin pair
        };
        let mut swapped = case.clone();
        let tmp = swapped.co[i].arrival;
        swapped.co[i].arrival = swapped.co[j].arrival;
        swapped.co[j].arrival = tmp;

        let built = case.build()?;
        let machine = Machine::new(built.spec.clone()).map_err(|e| e.to_string())?;
        let forward = machine
            .run_scheduled(&built.workload, built.schedules.as_deref(), &built.opts)
            .map_err(|e| format!("engine rejected law workload: {e}"))?;
        let built_swapped = swapped.build()?;
        let backward = machine
            .run_scheduled(
                &built_swapped.workload,
                built_swapped.schedules.as_deref(),
                &built_swapped.opts,
            )
            .map_err(|e| format!("engine rejected swapped workload: {e}"))?;

        // The target and every non-twin group are untouched bitwise; the
        // twins exchange roles, so their counter blocks cross over.
        let (wi, wj) = (i + 1, j + 1); // workload index = co index + 1
        if forward.wall_time_s.to_bits() != backward.wall_time_s.to_bits() {
            return Err(format!(
                "target wall time moved under arrival swap ({} vs {})",
                forward.wall_time_s, backward.wall_time_s
            ));
        }
        for g in 0..forward.counters.len() {
            let mirror = if g == wi {
                wj
            } else if g == wj {
                wi
            } else {
                g
            };
            counters_bits_equal(
                &format!("group {g} (mirror {mirror})"),
                &forward.counters[g],
                &backward.counters[mirror],
            )?;
        }
        Ok(())
    }
}

/// See module docs, law 7.
pub struct LockstepDegeneracy;

impl Law for LockstepDegeneracy {
    fn name(&self) -> &'static str {
        "lockstep-degeneracy"
    }

    fn provenance(&self) -> &'static str {
        "an all-default event schedule *is* the lockstep contract: same bits, same digest"
    }

    fn cases_per_run(&self) -> usize {
        16
    }

    fn case_for_seed(&self, seed: u64) -> Option<CorpusCase> {
        // Any lockstep case will do — the law supplies the schedules.
        Some(gen_case(
            seed,
            &GenConstraints {
                allow_events: false,
                ..Default::default()
            },
        ))
    }

    fn check_case(&self, case: &CorpusCase) -> Result<(), String> {
        let built = case.build()?;
        let machine = Machine::new(built.spec.clone()).map_err(|e| e.to_string())?;
        let lockstep = machine
            .run(&built.workload, &built.opts)
            .map_err(|e| format!("engine rejected law workload: {e}"))?;
        let defaults = vec![GroupSchedule::default(); built.workload.len()];
        let scheduled = machine
            .run_scheduled(&built.workload, Some(&defaults), &built.opts)
            .map_err(|e| format!("engine rejected default schedules: {e}"))?;
        outcomes_bits_equal("default schedule vs lockstep", &lockstep, &scheduled)?;

        // And the IR agrees: default schedules are canonicalized away, so
        // the digest (hence every cache key and checkpoint) is unchanged.
        let plain = built.ir.digest();
        let with_defaults = built.ir.clone().with_schedules(defaults).digest();
        if plain != with_defaults {
            return Err(format!(
                "default schedules moved the scenario digest ({plain:032x} vs {with_defaults:032x})"
            ));
        }
        Ok(())
    }
}

/// See module docs, law 8.
pub struct DepartureAtEndNoop;

impl Law for DepartureAtEndNoop {
    fn name(&self) -> &'static str {
        "departure-at-end-noop"
    }

    fn provenance(&self) -> &'static str {
        "segment caps are strict `<`, so a departure after the target completes never binds"
    }

    fn cases_per_run(&self) -> usize {
        12
    }

    fn case_for_seed(&self, seed: u64) -> Option<CorpusCase> {
        // Events on: arrivals/offsets/clocks survive into the base case
        // (departures are stripped at check time). Faults off: the law
        // runs the bare engine.
        Some(gen_case(
            seed,
            &GenConstraints {
                allow_faults: false,
                min_co_groups: 1,
                ..Default::default()
            },
        ))
    }

    fn check_case(&self, case: &CorpusCase) -> Result<(), String> {
        // Arm A: the case with every departure stripped.
        let mut base = case.clone();
        for g in &mut base.co {
            g.departure = None;
        }
        let built = base.build()?;
        let machine = Machine::new(built.spec.clone()).map_err(|e| e.to_string())?;
        let no_departure = machine
            .run_scheduled(&built.workload, built.schedules.as_deref(), &built.opts)
            .map_err(|e| format!("engine rejected law workload: {e}"))?;

        // True (noise-free) completion time bounds every simulated tick;
        // noise only rescales the reported wall, so the sim-time horizon
        // comes from a noiseless run of the same inputs.
        let mut quiet = built.opts;
        quiet.noise_sigma = 0.0;
        let horizon = machine
            .run_scheduled(&built.workload, built.schedules.as_deref(), &quiet)
            .map_err(|e| format!("engine rejected noiseless run: {e}"))?
            .wall_time_s;

        // Arm B: every co group departs strictly after the run ends.
        let mut schedules = built
            .schedules
            .clone()
            .unwrap_or_else(|| vec![GroupSchedule::default(); built.workload.len()]);
        for s in schedules.iter_mut().skip(1) {
            s.departure_tick = Some(s.arrival_tick + 2.0 * horizon);
        }
        let late_departure = machine
            .run_scheduled(&built.workload, Some(&schedules), &built.opts)
            .map_err(|e| format!("engine rejected late departures: {e}"))?;

        outcomes_bits_equal(
            "departure-at-end vs no departure",
            &no_departure,
            &late_departure,
        )
    }
}

// ---------------------------------------------------------------------
// Law 9: an identical-app pair is a relabeling — counters mirror bitwise.
// ---------------------------------------------------------------------

/// See module docs, law 9.
pub struct MatrixIdenticalPairSymmetry;

impl MatrixIdenticalPairSymmetry {
    /// Whether the case is in the law's domain: the target co-located
    /// with exactly one more instance of *itself*, lockstep, no faults.
    /// Shrinking can leave the domain; such cases pass vacuously.
    fn is_identical_pair(case: &CorpusCase) -> bool {
        case.faults.is_none()
            && case.co.len() == 1
            && case.co[0].count == 1
            && case.co[0].app == case.target
            && !case.co[0].has_schedule()
    }
}

impl Law for MatrixIdenticalPairSymmetry {
    fn name(&self) -> &'static str {
        "matrix-identical-pair-symmetry"
    }

    fn provenance(&self) -> &'static str {
        "a cross-interference matrix diagonal cell runs an app against itself: \
         the two groups are relabelable, so their counters mirror bitwise"
    }

    fn cases_per_run(&self) -> usize {
        16
    }

    fn case_for_seed(&self, seed: u64) -> Option<CorpusCase> {
        // Reserve a core for the twin instance; faults are off because a
        // fault plan indexes groups by position (breaking the symmetry on
        // purpose), and events are off so both instances run lockstep.
        let mut case = gen_case(
            seed,
            &GenConstraints {
                allow_faults: false,
                reserve_cores: 1,
                allow_events: false,
                ..Default::default()
            },
        );
        case.co = vec![CoGroup::plain(case.target.clone(), 1)];
        Some(case)
    }

    fn check_case(&self, case: &CorpusCase) -> Result<(), String> {
        if !Self::is_identical_pair(case) {
            return Ok(()); // vacuous: shrinking left the law's domain
        }
        let built = case.build()?;
        let machine = Machine::new(built.spec.clone()).map_err(|e| e.to_string())?;
        let outcome = machine
            .run(&built.workload, &built.opts)
            .map_err(|e| format!("engine rejected law workload: {e}"))?;
        if outcome.counters.len() != 2 {
            return Err(format!(
                "expected 2 counter blocks for an identical pair, got {}",
                outcome.counters.len()
            ));
        }
        // `completed_runs` is deliberately excluded: the target completes
        // exactly once while the co group restarts until it does, so only
        // the per-run physics (instructions, cycles, LLC traffic) mirror.
        let (t, c) = (&outcome.counters[0], &outcome.counters[1]);
        for (name, a, b) in [
            ("instructions", t.instructions, c.instructions),
            ("cycles", t.cycles, c.cycles),
            ("llc_accesses", t.llc_accesses, c.llc_accesses),
            ("llc_misses", t.llc_misses, c.llc_misses),
        ] {
            if a.to_bits() != b.to_bits() {
                return Err(format!(
                    "identical-pair {name} differs bitwise between target and twin ({a} vs {b})"
                ));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Law 10: mixed-pair co-runner listing order is presentation.
// ---------------------------------------------------------------------

/// See module docs, law 10.
pub struct MixedPairOrderInvariance;

impl MixedPairOrderInvariance {
    /// Whether the case is in the law's domain: exactly two distinct
    /// single-instance co-runners, lockstep, no faults.
    fn is_mixed_pair(case: &CorpusCase) -> bool {
        case.faults.is_none()
            && case.co.len() == 2
            && case.co.iter().all(|g| g.count == 1 && !g.has_schedule())
            && case.co[0].app != case.co[1].app
    }
}

impl Law for MixedPairOrderInvariance {
    fn name(&self) -> &'static str {
        "mixed-pair-order-invariance"
    }

    fn provenance(&self) -> &'static str {
        "per-co-runner feature vectors lower by summing over a *set*: listing order \
         changes neither the lowered features (two-term IEEE sums commute) nor the physics"
    }

    fn cases_per_run(&self) -> usize {
        4 // each case builds a lab and profiles baselines: keep it lean
    }

    fn case_for_seed(&self, seed: u64) -> Option<CorpusCase> {
        let mut case = gen_case(
            seed,
            &GenConstraints {
                allow_faults: false,
                allow_fp_budget: false,
                reserve_cores: 2,
                allow_events: false,
                ..Default::default()
            },
        );
        // Two distinct single-instance co-runners, picked deterministically
        // and distinct from each other (the target may repeat — that is
        // exactly the heterogeneous mix the encoding must keep straight).
        let mut rng = StdRng::seed_from_u64(seed ^ 0x313_7ED);
        let apps = suite::standard();
        let a = apps[rng.gen_range(0..apps.len())].name;
        let mut b = apps[rng.gen_range(0..apps.len())].name;
        while b == a {
            b = apps[rng.gen_range(0..apps.len())].name;
        }
        case.co = vec![CoGroup::plain(a, 1), CoGroup::plain(b, 1)];
        Some(case)
    }

    fn check_case(&self, case: &CorpusCase) -> Result<(), String> {
        if !Self::is_mixed_pair(case) {
            return Ok(()); // vacuous: shrinking left the law's domain
        }
        let spec = crate::case::machine_spec(&case.machine)?;
        let lab = Lab::new(spec, suite::standard(), case.seed)
            .map_err(|e| format!("lab construction failed: {e}"))?
            .with_threads(1);
        let forward = Scenario {
            target: case.target.clone(),
            co_located: case.co.iter().map(|g| (g.app.clone(), g.count)).collect(),
            pstate: case.pstate,
        };
        let mut backward = forward.clone();
        backward.co_located.reverse();

        // The heterogeneous encodings list the pair in opposite orders…
        let fwd_mix = lab.mix_featurize(&forward).map_err(|e| e.to_string())?;
        let bwd_mix = lab.mix_featurize(&backward).map_err(|e| e.to_string())?;
        if fwd_mix.co.len() != 2 || bwd_mix.co.len() != 2 {
            return Err(format!(
                "expected 2 co vectors, got {} / {}",
                fwd_mix.co.len(),
                bwd_mix.co.len()
            ));
        }
        // …but lower to bit-identical legacy features (summing two terms
        // in either order is exact in IEEE arithmetic), and the lowering
        // *is* the legacy featurize path.
        let (f, b) = (fwd_mix.lower(), bwd_mix.lower());
        for (k, (x, y)) in f.iter().zip(&b).enumerate() {
            if x.to_bits() != y.to_bits() {
                return Err(format!(
                    "lowered feature {k} moved under pair swap ({x} vs {y})"
                ));
            }
        }
        let legacy = lab.featurize(&forward).map_err(|e| e.to_string())?;
        for (k, (x, y)) in f.iter().zip(&legacy).enumerate() {
            if x.to_bits() != y.to_bits() {
                return Err(format!(
                    "mix lowering diverged from featurize at feature {k} ({x} vs {y})"
                ));
            }
        }

        // And the physics agrees within the permutation tolerance. The
        // engine is driven directly with one shared RunOptions: the lab
        // would seed noise from the scenario digest, which is (rightly)
        // order-sensitive, and noise is not what this law is about.
        let built = case.build()?;
        let machine = Machine::new(built.spec.clone()).map_err(|e| e.to_string())?;
        let mut reversed = vec![built.workload[0].clone()];
        reversed.extend(built.workload[1..].iter().rev().cloned());
        let fwd_wall = run_wall(&machine, &built)?;
        let bwd_wall = machine
            .run(&reversed, &built.opts)
            .map(|o| o.wall_time_s)
            .map_err(|e| format!("engine rejected swapped workload: {e}"))?;
        let rel = (fwd_wall - bwd_wall).abs() / fwd_wall.abs().max(bwd_wall.abs());
        if !(rel <= PERMUTATION_REL_TOL) {
            return Err(format!(
                "wall time moved {rel:e} relative under pair swap ({fwd_wall} vs {bwd_wall})"
            ));
        }
        Ok(())
    }
}

/// All laws, in documentation order.
pub fn all_laws() -> Vec<Box<dyn Law>> {
    vec![
        Box::new(MonotoneCoRunner),
        Box::new(SoloUnity),
        Box::new(PermutationInvariance),
        Box::new(MetricScaleInvariance),
        Box::new(FeatureNesting),
        Box::new(ArrivalOrderInvariance),
        Box::new(LockstepDegeneracy),
        Box::new(DepartureAtEndNoop),
        Box::new(MatrixIdenticalPairSymmetry),
        Box::new(MixedPairOrderInvariance),
    ]
}

/// Look up a law by its stable name.
pub fn law_by_name(name: &str) -> Option<Box<dyn Law>> {
    all_laws().into_iter().find(|l| l.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn law_names_are_stable_and_unique() {
        let laws = all_laws();
        let mut names: Vec<_> = laws.iter().map(|l| l.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
        for law in &laws {
            assert!(law_by_name(law.name()).is_some());
            assert!(!law.provenance().is_empty());
            assert!(law.cases_per_run() > 0);
        }
        assert!(law_by_name("no-such-law").is_none());
    }

    #[test]
    fn scenario_laws_produce_buildable_cases() {
        for law in [
            &MonotoneCoRunner as &dyn Law,
            &SoloUnity,
            &PermutationInvariance,
            &ArrivalOrderInvariance,
            &LockstepDegeneracy,
            &DepartureAtEndNoop,
            &MatrixIdenticalPairSymmetry,
            &MixedPairOrderInvariance,
        ] {
            for seed in 0..20u64 {
                let case = law.case_for_seed(seed).expect("scenario-based");
                case.build().expect("case builds");
            }
        }
    }

    #[test]
    fn arrival_law_cases_always_have_twins() {
        for seed in 0..50u64 {
            let case = ArrivalOrderInvariance.case_for_seed(seed).unwrap();
            let (i, j) = ArrivalOrderInvariance::twins(&case).expect("twin pair present");
            assert_eq!(case.co[i].app, case.co[j].app);
            assert_ne!(case.co[i].arrival, case.co[j].arrival);
            // Twins fit: the generator reserved two cores for them.
            let built = case.build().unwrap();
            let total: usize = built.workload.iter().map(|g| g.count).sum();
            assert!(total <= built.spec.cores, "{}", case.describe());
        }
    }

    #[test]
    fn event_laws_hold_on_their_own_seeds() {
        for law in [
            &ArrivalOrderInvariance as &dyn Law,
            &LockstepDegeneracy,
            &DepartureAtEndNoop,
        ] {
            for seed in 0..6u64 {
                law.check_seed(seed).unwrap_or_else(|v| {
                    panic!("{law_name} seed {seed}: {v}", law_name = law.name())
                });
            }
        }
    }

    #[test]
    fn arrival_law_rejects_a_broken_swap() {
        // The law must bite: perturbing one twin's clock ratio (so the
        // pair is *not* interchangeable, but forcing the check anyway by
        // keeping the structure twin-like) changes the physics. Instead
        // of reaching into the engine, check that genuinely different
        // arrivals on non-twin apps fail the mirrored-counter claim.
        let mut case = ArrivalOrderInvariance.case_for_seed(3).unwrap();
        let n = case.co.len();
        // Sabotage: make the twins different apps but keep the twin shape
        // undetectable? `twins()` checks app equality, so instead check
        // the detector itself refuses the sabotage.
        case.co[n - 1].app = if case.co[n - 2].app == "ep" {
            "cg".into()
        } else {
            "ep".into()
        };
        assert!(ArrivalOrderInvariance::twins(&case).is_none());
        // And a twin pair with equal arrivals is out of domain too.
        let mut case = ArrivalOrderInvariance.case_for_seed(3).unwrap();
        let n = case.co.len();
        case.co[n - 1].arrival = case.co[n - 2].arrival;
        assert!(ArrivalOrderInvariance::twins(&case).is_none());
    }

    #[test]
    fn permutation_cases_always_have_two_groups() {
        for seed in 0..50u64 {
            let case = PermutationInvariance.case_for_seed(seed).unwrap();
            assert!(case.co.len() >= 2, "{}", case.describe());
            let built = case.build().unwrap();
            let total: usize = built.workload.iter().map(|g| g.count).sum();
            assert!(total <= built.spec.cores);
        }
    }

    #[test]
    fn identical_pair_law_holds_and_cases_are_in_domain() {
        for seed in 0..8u64 {
            let case = MatrixIdenticalPairSymmetry.case_for_seed(seed).unwrap();
            assert!(
                MatrixIdenticalPairSymmetry::is_identical_pair(&case),
                "{}",
                case.describe()
            );
            MatrixIdenticalPairSymmetry
                .check_case(&case)
                .unwrap_or_else(|d| panic!("seed {seed}: {d}"));
        }
        // Out-of-domain shapes pass vacuously (shrinker safety).
        let mut case = MatrixIdenticalPairSymmetry.case_for_seed(0).unwrap();
        case.co[0].app = if case.target == "ep" { "cg" } else { "ep" }.into();
        assert!(!MatrixIdenticalPairSymmetry::is_identical_pair(&case));
        MatrixIdenticalPairSymmetry.check_case(&case).unwrap();
    }

    #[test]
    fn mixed_pair_law_holds_and_cases_are_in_domain() {
        for seed in 0..2u64 {
            let case = MixedPairOrderInvariance.case_for_seed(seed).unwrap();
            assert!(
                MixedPairOrderInvariance::is_mixed_pair(&case),
                "{}",
                case.describe()
            );
            MixedPairOrderInvariance
                .check_case(&case)
                .unwrap_or_else(|d| panic!("seed {seed}: {d}"));
        }
        let mut case = MixedPairOrderInvariance.case_for_seed(0).unwrap();
        case.co.pop();
        assert!(!MixedPairOrderInvariance::is_mixed_pair(&case));
        MixedPairOrderInvariance.check_case(&case).unwrap();
    }

    #[test]
    fn metric_law_rejects_a_broken_metric() {
        // The law must bite: feed it a deliberately scale-dependent
        // "metric" by checking that plain MAE (not scale-free) would fail
        // the same bound MPE passes.
        let actual = [100.0, 200.0];
        let predicted = [110.0, 180.0];
        let mae0 = coloc_ml::mae(&predicted, &actual);
        let sa: Vec<f64> = actual.iter().map(|v| v * 10.0).collect();
        let sp: Vec<f64> = predicted.iter().map(|v| v * 10.0).collect();
        let mae_k = coloc_ml::mae(&sp, &sa);
        assert!((mae_k - mae0).abs() / mae0 > 1e-9, "MAE is scale-dependent");
        // ...while the real law holds on the same data.
        MetricScaleInvariance.check_seed(11).unwrap();
    }
}
