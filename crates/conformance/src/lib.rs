//! # coloc-conformance
//!
//! Correctness tooling for the co-location pipeline: a differential
//! oracle, metamorphic laws, and a replayable scenario corpus.
//!
//! The optimized engine ([`coloc_machine::engine`]) has accumulated
//! performance machinery — reusable run scratch, incremental MRC
//! loading, group-first indexing, a memoizing [`coloc_machine::RunCache`]
//! — that the paper's validation protocol cannot see: repeated
//! sub-sampling shows predictions are *stable*, not that the simulated
//! physics is *right*. This crate supplies the independent witnesses:
//!
//! * [`refengine::RefEngine`] — a naive re-implementation of the engine
//!   (fresh allocations per segment, MRCs recomputed from distributions,
//!   O(n²) owner scans, inline DRAM/occupancy formulas, no caching) that
//!   the differential harness compares against the optimized stack on
//!   every field of every outcome, to 1e-9 relative (bit-identity in
//!   practice).
//! * [`laws`] — reusable [`laws::Law`] objects encoding paper-derived
//!   invariants: monotone interference, solo unity, co-runner
//!   permutation invariance, MPE/NRMSE scale invariance, feature-set
//!   nesting of the linear model's train fit, three event-semantics
//!   laws (arrival-order invariance of interchangeable twins, lockstep
//!   degeneracy of all-default schedules, departure-past-the-end no-op),
//!   and two feature-pipeline laws (identical-pair counter symmetry on
//!   the cross-interference matrix diagonal, mixed-pair order
//!   invariance of the heterogeneous co-runner encoding).
//! * [`case`] / [`corpus`] — a seeded scenario generator with a
//!   deterministic shrinker, and a checked-in JSON corpus under
//!   `corpus/` that `coloc verify`, `repro conformance`, and CI replay
//!   on every change. Failing generated cases are shrunk and persisted
//!   there, so a bug found once is re-checked forever.
//! * [`mod@placement_laws`] — the same law/shrink/corpus discipline one
//!   layer up, for the fleet-placement simulation (`crates/placement`):
//!   job-permutation invariance of single-wave outcomes, exact
//!   solo-regret zero, and empty-machine monotonicity, with their own
//!   case type and `corpus/placement/` subdirectory.

#![warn(missing_docs)]

pub mod case;
pub mod corpus;
pub mod diff;
pub mod laws;
pub mod placement_laws;
pub mod refengine;

pub use case::{
    gen_case, gen_cases, shrink, BuiltCase, CoGroup, CorpusCase, FaultSpec, GenConstraints,
};
pub use corpus::{default_corpus_dir, seed_corpus, verify_dir, verify_dir_threaded, VerifyReport};
pub use diff::{
    check_case, differential_sweep, differential_sweep_threaded, DiffReport, DiffSummary, REL_TOL,
    SLOWDOWN_REL_TOL,
};
pub use laws::{all_laws, law_by_name, Law, Violation};
pub use placement_laws::{
    placement_corpus_dir, placement_law_by_name, placement_laws, shrink_placement,
    verify_placement_dir, PlacementCase, PlacementLaw,
};
pub use refengine::RefEngine;
