//! Portability of the methodology across processors, and the §IV-B1
//! class-average prediction mode.
//!
//! The methodology is per-machine: models are trained on each processor's
//! own sweep, but the *procedure* ports unchanged. This example trains the
//! same model grid on both Xeons, then shows the class-average mode:
//! predicting with only a coarse idea of how memory-intensive the apps are.
//!
//! Run with: `cargo run --release --example cross_machine`

use coloc::machine::presets;
use coloc::model::classavg::ClassAverager;
use coloc::model::{FeatureSet, Lab, ModelKind, Predictor, Scenario, TrainingPlan};
use coloc::workloads::standard;

fn main() {
    for spec in [presets::xeon_e5649(), presets::xeon_e5_2697v2()] {
        let name = spec.name.clone();
        let lab = Lab::new(spec, standard(), 33).expect("valid preset");
        let plan = TrainingPlan {
            counts: lab.paper_plan().counts.iter().copied().step_by(2).collect(),
            ..lab.paper_plan()
        }
        .thinned(2, 1);
        println!("== {name}: training on {} runs ==", plan.len());
        let samples = lab.collect(&plan).expect("sweep");
        let nn = Predictor::train(ModelKind::NeuralNet, FeatureSet::F, &samples, 9).expect("train");

        // Exact featurization vs. class-average featurization on an unseen
        // heterogeneous scenario.
        let avg = ClassAverager::from_lab(&lab);
        let sc = Scenario {
            target: "canneal".into(),
            co_located: vec![("cg".into(), 2), ("ep".into(), 2)],
            pstate: 0,
        };
        let actual = lab.run_scenario(&sc).expect("run");
        let exact = nn.predict(&lab.featurize(&sc).expect("feat"));
        let coarse = nn.predict(&avg.featurize(&lab, &sc).expect("feat"));
        println!("scenario: {}", sc.label());
        println!("  actual:                  {actual:.1} s");
        println!(
            "  predicted (exact feats): {exact:.1} s  ({:+.1}%)",
            100.0 * (exact - actual) / actual
        );
        println!(
            "  predicted (class avgs):  {coarse:.1} s  ({:+.1}%)",
            100.0 * (coarse - actual) / actual
        );
        println!();
    }
    println!(
        "The same pipeline ran unmodified on both processors — the paper's\n\
         portability claim: only the training data is machine-specific."
    );
}
