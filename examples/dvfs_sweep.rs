//! P-state (DVFS) sensitivity of co-location degradation, plus the
//! paper's §VI energy extension.
//!
//! Memory-bound applications lose less from frequency scaling than
//! compute-bound ones (the memory wall), and co-location degradation
//! interacts with the P-state. The energy model composes predicted time
//! with DVFS-aware socket power to find the energy-optimal P-state.
//!
//! Run with: `cargo run --release --example dvfs_sweep`

use coloc::machine::presets;
use coloc::model::energy::{EnergyPredictor, PowerModel};
use coloc::model::{FeatureSet, Lab, ModelKind, Predictor, Scenario, TrainingPlan};
use coloc::workloads::standard;

fn main() {
    let lab = Lab::new(presets::xeon_e5649(), standard(), 21).expect("valid preset");
    let spec_pstates = lab.machine().spec().pstates_ghz.clone();

    // Degradation vs. P-state, measured.
    println!("measured slowdown of canneal under 5x cg, per P-state:");
    let base = lab
        .baselines()
        .get("canneal")
        .expect("canneal")
        .exec_time_s
        .clone();
    for (p, f) in spec_pstates.iter().enumerate() {
        let sc = Scenario::homogeneous("canneal", "cg", 5, p);
        let t = lab.run_scenario(&sc).expect("run");
        println!(
            "  P{p} ({f:.2} GHz): {:.0}s vs baseline {:.0}s = {:.3}x",
            t,
            base[p],
            t / base[p]
        );
    }

    // Train a predictor across all P-states and use it for energy planning.
    let plan = TrainingPlan {
        counts: vec![1, 3, 5],
        ..lab.paper_plan()
    };
    println!("\ntraining on {} runs…", plan.len());
    let samples = lab.collect(&plan).expect("sweep");
    let nn = Predictor::train(ModelKind::NeuralNet, FeatureSet::F, &samples, 5).expect("train");
    let energy = EnergyPredictor::new(&nn, PowerModel::default());

    println!("\npredicted time/power/energy for canneal+5x cg per P-state:");
    println!(
        "{:>4} {:>10} {:>10} {:>12}",
        "P", "time (s)", "power (W)", "energy (kJ)"
    );
    let mut best = (0usize, f64::INFINITY);
    for p in 0..spec_pstates.len() {
        let sc = Scenario::homogeneous("canneal", "cg", 5, p);
        let est = energy.predict(&lab, &sc).expect("estimate");
        if est.socket_energy_j < best.1 {
            best = (p, est.socket_energy_j);
        }
        println!(
            "{:>4} {:>10.1} {:>10.1} {:>12.2}",
            p,
            est.predicted_time_s,
            est.socket_power_w,
            est.socket_energy_j / 1e3
        );
    }
    println!(
        "\nenergy-optimal P-state for this co-location: P{} ({:.2} GHz)",
        best.0, spec_pstates[best.0]
    );
}
