//! Interference-aware consolidation — the use case the paper's
//! introduction motivates.
//!
//! A batch of mixed jobs must be consolidated onto two sockets. A naive
//! packer fills the first socket and then the second; the model-driven
//! scheduler spreads memory-hungry jobs so they do not fight for the same
//! LLC and memory bus. We verify the predicted win by actually running
//! both placements on the simulator.
//!
//! Run with: `cargo run --release --example scheduler`

use coloc::machine::presets;
use coloc::model::scheduler::{Policy, Scheduler};
use coloc::model::{FeatureSet, Lab, ModelKind, Predictor, Scenario};
use coloc::workloads::standard;

fn main() {
    let lab = Lab::new(presets::xeon_e5649(), standard(), 11).expect("valid preset");

    // Train on the paper's sweep (thinned for example runtime).
    let plan = lab.paper_plan().thinned(3, 1);
    println!("training on {} runs…", plan.len());
    let samples = lab.collect(&plan).expect("sweep");
    let model = Predictor::train(ModelKind::NeuralNet, FeatureSet::E, &samples, 3).expect("train");

    // The batch: four memory hogs, four moderate, four compute-bound.
    let jobs: Vec<String> = [
        "cg",
        "cg",
        "streamcluster",
        "mg",
        "canneal",
        "sp",
        "ft",
        "ua",
        "ep",
        "ep",
        "blackscholes",
        "blackscholes",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let sched = Scheduler::new(&lab, &model, 0);
    for policy in [Policy::PackFirstFit, Policy::LeastInterference] {
        let placement = sched.place(&jobs, 2, policy).expect("placement fits");
        println!("\n--- {policy:?} ---");
        for (i, s) in placement.sockets.iter().enumerate() {
            println!("socket {i}: {:?}", s.jobs);
        }
        println!(
            "predicted slowdown: mean {:.3}, worst {:.3}",
            placement.mean_slowdown().expect("non-empty placement"),
            placement.max_slowdown().expect("non-empty placement")
        );

        // Ground truth: measure each job's actual slowdown in its socket.
        let mut actual = Vec::new();
        for s in &placement.sockets {
            for (i, job) in s.jobs.iter().enumerate() {
                let mut co: Vec<(String, usize)> = Vec::new();
                for (k, n) in s.jobs.iter().enumerate() {
                    if k != i {
                        match co.iter_mut().find(|(name, _)| name == n) {
                            Some((_, c)) => *c += 1,
                            None => co.push((n.clone(), 1)),
                        }
                    }
                }
                let sc = Scenario {
                    target: job.clone(),
                    co_located: co,
                    pstate: 0,
                };
                let t = lab.run_scenario(&sc).expect("run");
                let base = lab.baselines().get(job).expect("baseline").exec_time_s[0];
                actual.push(t / base);
            }
        }
        let mean = actual.iter().sum::<f64>() / actual.len() as f64;
        let worst = actual.iter().cloned().fold(0.0f64, f64::max);
        println!("measured  slowdown: mean {mean:.3}, worst {worst:.3}");
    }
}
