//! Performance-counter profiling with the PAPI-like portable API.
//!
//! Shows the measurement layer the methodology is built on: event sets,
//! flat profiles, derived metrics, and memory-intensity classification —
//! the paper's §IV workflow, independent of any prediction model.
//!
//! Run with: `cargo run --release --example profiling`

use coloc::machine::{presets, Machine, RunOptions, RunnerGroup};
use coloc::perfmon::{EventSet, FlatProfiler, Preset};
use coloc::workloads::{standard, MemoryClass};

fn main() {
    let machine = Machine::new(presets::xeon_e5_2697v2()).expect("valid preset");
    let profiler = FlatProfiler::new(&machine, EventSet::methodology());

    println!(
        "{:<14} {:>14} {:>14} {:>12} {:>10}",
        "app", "PAPI_TOT_INS", "PAPI_LLC_TCM", "mem.intens.", "class"
    );
    println!("{}", "-".repeat(70));
    for b in standard() {
        let p = profiler
            .profile_solo(&b.app, &RunOptions::default())
            .expect("solo profile");
        let d = p.derived();
        println!(
            "{:<14} {:>14.3e} {:>14.3e} {:>12.3e} {:>10}",
            b.name,
            p.value(Preset::TotIns).unwrap(),
            p.value(Preset::LlcTcm).unwrap(),
            d.memory_intensity,
            MemoryClass::classify(d.memory_intensity)
        );
    }

    // Counters under co-location: canneal's misses inflate as cg neighbours
    // squeeze it out of the shared LLC.
    println!("\ncanneal LLC misses vs. number of co-located cg instances:");
    let canneal = standard()
        .into_iter()
        .find(|b| b.name == "canneal")
        .unwrap();
    let cg = standard().into_iter().find(|b| b.name == "cg").unwrap();
    for n in [0usize, 2, 5, 8, 11] {
        let mut wl = vec![RunnerGroup::solo(canneal.app.clone())];
        if n > 0 {
            wl.push(RunnerGroup {
                app: cg.app.clone(),
                count: n,
            });
        }
        let p = profiler
            .profile(&wl, &RunOptions::default())
            .expect("profile");
        println!(
            "  {n:>2} co-runners: {:>12.3e} misses, {:>6.1} s",
            p.value(Preset::LlcTcm).unwrap(),
            p.wall_time_s
        );
    }
}
