//! Quickstart: train a co-location performance model and predict.
//!
//! This walks the full methodology end to end on the 6-core Xeon E5649:
//! baseline profiling, training-data collection, model training, and
//! prediction for scenarios the model never saw.
//!
//! Run with: `cargo run --release --example quickstart`

use coloc::machine::presets;
use coloc::model::{FeatureSet, Lab, ModelKind, Predictor, Scenario, TrainingPlan};
use coloc::workloads::standard;

fn main() {
    // A lab = a machine + a benchmark suite + a seed for measurement noise.
    let lab = Lab::new(presets::xeon_e5649(), standard(), 42).expect("valid preset");

    // 1. Baselines: one solo profiling pass per application.
    println!(
        "collecting baselines for {} applications…",
        lab.suite().len()
    );
    let db = lab.baselines();
    let canneal = db.get("canneal").expect("canneal in suite");
    println!(
        "canneal: baseline {:.0}s at P0, memory intensity {:.2e}",
        canneal.exec_time_s[0], canneal.memory_intensity
    );

    // 2. Training data: a thinned version of the paper's Table V sweep
    //    (use `lab.paper_plan()` for the full 1320-run sweep).
    let plan = TrainingPlan {
        counts: vec![1, 3, 5],
        ..lab.paper_plan()
    }
    .thinned(2, 1);
    println!("collecting {} training runs…", plan.len());
    let samples = lab.collect(&plan).expect("training sweep");

    // 3. Train the paper's best model: a neural network on feature set F.
    let nn = Predictor::train(ModelKind::NeuralNet, FeatureSet::F, &samples, 7)
        .expect("training succeeds");

    // 4. Predict scenarios that were never measured (count 4 and a
    //    co-runner outside the training plan's counts).
    println!(
        "\n{:<34} {:>10} {:>10} {:>8}",
        "scenario", "actual(s)", "pred(s)", "err(%)"
    );
    for sc in [
        Scenario::homogeneous("canneal", "cg", 2, 0),
        Scenario::homogeneous("canneal", "cg", 4, 0),
        Scenario::homogeneous("bodytrack", "sp", 4, 3),
        Scenario::homogeneous("ft", "fluidanimate", 2, 1),
    ] {
        let features = lab.featurize(&sc).expect("featurize");
        let predicted = nn.predict(&features);
        let actual = lab.run_scenario(&sc).expect("measure");
        println!(
            "{:<34} {:>10.1} {:>10.1} {:>8.2}",
            sc.label(),
            actual,
            predicted,
            100.0 * (predicted - actual).abs() / actual
        );
    }
}
