//! Thermal throttling: why P-states change underneath a resource manager.
//!
//! The paper's §IV-A4 notes that "processor P-states are likely to change
//! in high performance computing systems based on the system's need to
//! reduce power or temperature" — which is exactly why the models take
//! the target's baseline time *per P-state*. This example closes the loop:
//! a thermal RC model plus a throttle governor produce a realistic
//! time-varying P-state trace, and the prediction models supply the
//! per-P-state execution-time inputs a throttling-aware scheduler needs.
//!
//! Run with: `cargo run --release --example thermal`

use coloc::machine::governor::{run_throttled, GovernorConfig, ThermalModel};
use coloc::machine::{presets, Machine, RunOptions};
use coloc::model::energy::PowerModel;
use coloc::workloads::by_name;

fn main() {
    let machine = Machine::new(presets::xeon_e5649()).expect("valid preset");
    let spec = machine.spec().clone();
    let app = by_name("blackscholes").expect("in suite").app;

    // Socket power per P-state from the energy extension's model, scaled up
    // to a fully-loaded, poorly-cooled node so throttling actually occurs.
    let pm = PowerModel {
        static_w: 80.0,
        core_dynamic_w: 25.0,
        exponent: 3.0,
    };
    let power = |p: usize| pm.socket_power_w(&spec, p, spec.cores);

    let thermal = ThermalModel {
        theta_c_per_w: 0.35,
        tau_s: 12.0,
        ambient_c: 38.0,
    };
    let gov = GovernorConfig {
        throttle_at_c: 85.0,
        hysteresis_c: 6.0,
        interval_s: 0.5,
    };

    println!(
        "steady-state temperature per P-state (cap = {} degC):",
        gov.throttle_at_c
    );
    for p in 0..spec.num_pstates() {
        println!(
            "  P{p} ({:.2} GHz): {:>6.1} W -> {:>5.1} degC",
            spec.pstates_ghz[p],
            power(p),
            thermal.steady_state_c(power(p))
        );
    }

    let out = run_throttled(&machine, &app, power, &thermal, &gov).expect("throttled run");
    println!("\nthermally-governed run of {}:", app.name);
    println!(
        "  wall time: {:.1} s (P0-only would be {:.1} s)",
        out.wall_time_s,
        {
            let p0 = machine.run_solo(&app, &RunOptions::default()).expect("p0");
            p0.wall_time_s
        }
    );
    println!("  peak temperature: {:.1} degC", out.peak_temp_c);
    println!("  governor transitions: {}", out.transitions());
    println!("  time per P-state:");
    for p in 0..spec.num_pstates() {
        let t = out.time_at(p);
        if t > 0.0 {
            let bar = "#".repeat((t / out.wall_time_s * 40.0).round() as usize);
            println!("    P{p}: {t:>7.1} s {bar}");
        }
    }
    println!(
        "\nFirst residencies: {:?}",
        &out.residencies[..out.residencies.len().min(6)]
    );
    println!(
        "\nA co-location-aware scheduler would combine this P-state trace with\n\
         the per-P-state baseExTime features the models already consume."
    );
}
