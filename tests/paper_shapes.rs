//! Qualitative shape checks: the empirical regularities the paper reports
//! must hold in this reproduction's measurement substrate.

use coloc::machine::presets;
use coloc::model::{Lab, Scenario};
use coloc::workloads::{standard, MemoryClass};

fn lab12() -> Lab {
    Lab::new(presets::xeon_e5_2697v2(), standard(), 6).expect("valid preset")
}

#[test]
fn degradation_monotone_in_co_runner_count_table6_shape() {
    // Table VI: canneal's time grows monotonically with co-located cg.
    let lab = lab12();
    let mut prev = 0.0;
    for n in [0usize, 2, 5, 8, 11] {
        let sc = if n == 0 {
            Scenario::solo("canneal", 0)
        } else {
            Scenario::homogeneous("canneal", "cg", n, 0)
        };
        let t = lab.run_scenario(&sc).unwrap();
        assert!(t > prev * 0.999, "n={n}: {t} after {prev}");
        prev = t;
    }
}

#[test]
fn degradation_magnitude_is_in_the_papers_ballpark() {
    // Paper: canneal +33% under 11 cg; elsewhere co-location "can as much
    // as double or triple" execution time. Demand: meaningful degradation,
    // not beyond the literature's extremes.
    let lab = lab12();
    let solo = lab.run_scenario(&Scenario::solo("canneal", 0)).unwrap();
    let full = lab
        .run_scenario(&Scenario::homogeneous("canneal", "cg", 11, 0))
        .unwrap();
    let slowdown = full / solo;
    assert!(
        (1.15..3.0).contains(&slowdown),
        "canneal slowdown under 11 cg = {slowdown:.2}"
    );
}

#[test]
fn class_ordering_governs_aggressiveness() {
    // Co-runners from more memory-intensive classes hurt the target more.
    let lab = lab12();
    let mut prev = f64::INFINITY;
    for co in ["cg", "sp", "fluidanimate", "ep"] {
        let t = lab
            .run_scenario(&Scenario::homogeneous("canneal", co, 6, 0))
            .unwrap();
        assert!(
            t < prev * 1.005,
            "{co} (less intensive) should hurt no more than its predecessor: {t} vs {prev}"
        );
        prev = t;
    }
}

#[test]
fn class_iv_co_runners_are_nearly_harmless() {
    let lab = lab12();
    let solo = lab.run_scenario(&Scenario::solo("sp", 0)).unwrap();
    let with_ep = lab
        .run_scenario(&Scenario::homogeneous("sp", "ep", 11, 0))
        .unwrap();
    assert!(
        with_ep / solo < 1.06,
        "11 ep co-runners caused {:.3}x",
        with_ep / solo
    );
}

#[test]
fn memory_bound_targets_suffer_more_than_compute_bound() {
    let lab = lab12();
    let slowdown = |target: &str| {
        let solo = lab.run_scenario(&Scenario::solo(target, 0)).unwrap();
        let full = lab
            .run_scenario(&Scenario::homogeneous(target, "cg", 8, 0))
            .unwrap();
        full / solo
    };
    let hungry = slowdown("streamcluster"); // class I target
    let compute = slowdown("ep"); // class IV target
    assert!(
        hungry > compute + 0.05,
        "class I target {hungry:.3}x vs class IV target {compute:.3}x"
    );
}

#[test]
fn lower_frequency_reduces_relative_memory_pressure() {
    // At a lower P-state, compute slows but DRAM does not, so contention
    // degradation (relative) shrinks — the interaction that makes
    // baseExTime-per-P-state a necessary feature.
    let lab = lab12();
    let ratio_at = |p: usize| {
        let solo = lab
            .run_scenario(&Scenario::solo("streamcluster", p))
            .unwrap();
        let full = lab
            .run_scenario(&Scenario::homogeneous("streamcluster", "cg", 11, p))
            .unwrap();
        full / solo
    };
    let fast = ratio_at(0);
    let slow = ratio_at(5);
    assert!(
        slow < fast,
        "slowdown at P5 ({slow:.3}) should undercut P0 ({fast:.3})"
    );
}

#[test]
fn every_class_has_an_app_whose_solo_run_classifies_correctly() {
    let lab = lab12();
    let db = lab.baselines();
    for class in MemoryClass::ALL {
        let found = standard()
            .iter()
            .filter(|b| b.class == class)
            .any(|b| MemoryClass::classify(db.get(b.name).unwrap().memory_intensity) == class);
        assert!(found, "{class} unrepresented in measured baselines");
    }
}
