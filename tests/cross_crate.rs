//! Cross-crate consistency: the same quantities measured through different
//! layers (engine counters, perfmon profiles, lab baselines, cache models)
//! must agree.

use coloc::cachesim::{shared_occupancy, SharedApp};
use coloc::machine::{presets, Machine, RunOptions, RunnerGroup};
use coloc::model::{Feature, Lab, Scenario};
use coloc::perfmon::{EventSet, FlatProfiler, Preset};
use coloc::workloads::{by_name, standard};

#[test]
fn profiler_counters_equal_engine_counters() {
    let machine = Machine::new(presets::xeon_e5649()).expect("valid preset");
    let app = by_name("canneal").unwrap().app;
    let opts = RunOptions::default();

    let outcome = machine.run_solo(&app, &opts).unwrap();
    let profiler = FlatProfiler::new(&machine, EventSet::methodology());
    let profile = profiler.profile_solo(&app, &opts).unwrap();

    assert_eq!(
        profile.value(Preset::TotIns).unwrap(),
        outcome.counters[0].instructions
    );
    assert_eq!(
        profile.value(Preset::LlcTcm).unwrap(),
        outcome.counters[0].llc_misses
    );
    assert_eq!(
        profile.value(Preset::LlcTca).unwrap(),
        outcome.counters[0].llc_accesses
    );
    assert_eq!(profile.wall_time_s, outcome.wall_time_s);
    assert_eq!(
        profile.derived().memory_intensity,
        outcome.counters[0].memory_intensity()
    );
}

#[test]
fn lab_baselines_equal_direct_profiling() {
    let lab = Lab::new(presets::xeon_e5649(), standard(), 42).expect("valid preset");
    let db = lab.baselines();
    let sp = db.get("sp").unwrap();
    // Re-measure through the lab's scenario path at P0 — must match the
    // recorded baseline exactly (same derived seed stream).
    let t = lab.run_scenario(&Scenario::solo("sp", 0)).unwrap();
    // Different noise stream -> close but not necessarily equal.
    assert!((t - sp.exec_time_s[0]).abs() / sp.exec_time_s[0] < 0.05);
}

#[test]
fn featurized_num_coapp_matches_scenario_arithmetic() {
    let lab = Lab::new(presets::xeon_e5649(), standard(), 42).expect("valid preset");
    for n in 1..=5 {
        let sc = Scenario::homogeneous("ft", "sp", n, 0);
        let f = lab.featurize(&sc).unwrap();
        assert_eq!(f[Feature::NumCoApp.index()], n as f64);
        // coApp sums scale linearly in n for homogeneous co-location.
        let f1 = lab
            .featurize(&Scenario::homogeneous("ft", "sp", 1, 0))
            .unwrap();
        let ratio = f[Feature::CoAppMem.index()] / f1[Feature::CoAppMem.index()];
        assert!((ratio - n as f64).abs() < 1e-9);
    }
}

#[test]
fn engine_miss_rates_track_standalone_occupancy_model() {
    // The engine's internal contention solver and the cachesim occupancy
    // model must agree on who suffers: run canneal+4cg on the engine and
    // compare the *direction* with a direct shared_occupancy solve.
    let machine = Machine::new(presets::xeon_e5649()).expect("valid preset");
    let canneal = by_name("canneal").unwrap().app;
    let cg = by_name("cg").unwrap().app;

    let solo = machine.run_solo(&canneal, &RunOptions::default()).unwrap();
    let shared = machine
        .run(
            &[
                RunnerGroup::solo(canneal.clone()),
                RunnerGroup {
                    app: cg.clone(),
                    count: 4,
                },
            ],
            &RunOptions::default(),
        )
        .unwrap();
    let mr_solo = solo.counters[0].miss_ratio();
    let mr_shared = shared.counters[0].miss_ratio();
    assert!(mr_shared > mr_solo, "{mr_shared} vs {mr_solo}");

    // Direct occupancy solve at representative access rates.
    let llc = machine.spec().llc_bytes;
    let apps: Vec<SharedApp> = std::iter::once(&canneal)
        .chain(std::iter::repeat_n(&cg, 4))
        .map(|a| SharedApp {
            access_rate: a.phases[0].accesses_per_instr,
            mrc: a.phases[0].mrc(),
        })
        .collect();
    let sol = shared_occupancy(llc, &apps);
    let solo_mr_model = canneal.phases[0].mrc().miss_rate(llc);
    assert!(
        sol.miss_rates[0] > solo_mr_model,
        "occupancy model: shared {} vs solo {}",
        sol.miss_rates[0],
        solo_mr_model
    );
}

#[test]
fn umbrella_reexports_are_wired() {
    // Spot-check that every façade module is reachable from `coloc`.
    let _ = coloc::linalg::Mat::identity(2);
    let _ = coloc::ml::rng::derive_seed(1, 2);
    let _ = coloc::memsys::DramSpec::ddr3_1333_triple_channel();
    let _ = coloc::cachesim::StackDistanceDist::uniform(4, 0.1);
    let _ = coloc::machine::presets::xeon_e5649();
    let _ = coloc::perfmon::Preset::TotIns;
    let _ = coloc::workloads::MemoryClass::I;
    let _ = coloc::model::FeatureSet::F;
}
