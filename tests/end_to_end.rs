//! End-to-end integration: the full methodology pipeline across all
//! workspace crates, at reduced scale so it runs quickly in debug builds.

use coloc::machine::presets;
use coloc::ml::validate::ValidationConfig;
use coloc::model::experiment::{evaluate_model, rank_features};
use coloc::model::{FeatureSet, Lab, ModelKind, Predictor, Scenario, TrainingPlan};
use coloc::workloads::standard;

fn small_plan(_lab: &Lab) -> TrainingPlan {
    TrainingPlan {
        pstates: vec![0, 3],
        targets: vec![
            "cg".into(),
            "canneal".into(),
            "ft".into(),
            "fluidanimate".into(),
            "ep".into(),
        ],
        co_runners: vec!["cg".into(), "sp".into(), "ep".into()],
        counts: vec![1, 3, 5],
    }
}

#[test]
fn pipeline_trains_and_predicts_unseen_scenarios() {
    let lab = Lab::new(presets::xeon_e5649(), standard(), 1234).expect("valid preset");
    let samples = lab.collect(&small_plan(&lab)).expect("sweep");
    assert_eq!(samples.len(), 2 * 5 * 3 * 3);

    let nn = Predictor::train(ModelKind::NeuralNet, FeatureSet::F, &samples, 2).expect("train");

    // Unseen count (4) and unseen P-state column combination.
    let sc = Scenario::homogeneous("canneal", "cg", 4, 0);
    let predicted = nn.predict(&lab.featurize(&sc).unwrap());
    let actual = lab.run_scenario(&sc).unwrap();
    let err = (predicted - actual).abs() / actual;
    assert!(
        err < 0.15,
        "interpolation error {err:.3} (pred {predicted}, actual {actual})"
    );
}

#[test]
fn nn_f_beats_linear_a_under_validation() {
    // The paper's headline ordering at miniature scale.
    let lab = Lab::new(presets::xeon_e5649(), standard(), 99).expect("valid preset");
    let samples = lab.collect(&small_plan(&lab)).expect("sweep");
    let cfg = ValidationConfig {
        partitions: 6,
        ..Default::default()
    };
    let lin_a = evaluate_model(&samples, ModelKind::Linear, FeatureSet::A, &cfg).unwrap();
    let nn_f = evaluate_model(&samples, ModelKind::NeuralNet, FeatureSet::F, &cfg).unwrap();
    assert!(
        nn_f.test_mpe < lin_a.test_mpe,
        "NN-F {:.2}% should beat linear-A {:.2}%",
        nn_f.test_mpe,
        lin_a.test_mpe
    );
}

#[test]
fn homogeneous_training_generalizes_to_heterogeneous_mixes() {
    // §IV-B3: training data is homogeneous by design, but is "able to …
    // extend beyond the set of four co-location applications" — check the
    // features generalize to mixed co-runner scenarios.
    let lab = Lab::new(presets::xeon_e5649(), standard(), 7).expect("valid preset");
    let samples = lab.collect(&small_plan(&lab)).expect("sweep");
    let nn = Predictor::train(ModelKind::NeuralNet, FeatureSet::F, &samples, 3).expect("train");

    let sc = Scenario {
        target: "canneal".into(),
        co_located: vec![("cg".into(), 2), ("ep".into(), 2)],
        pstate: 0,
    };
    let predicted = nn.predict(&lab.featurize(&sc).unwrap());
    let actual = lab.run_scenario(&sc).unwrap();
    let err = (predicted - actual).abs() / actual;
    assert!(
        err < 0.20,
        "heterogeneous extrapolation error {err:.3} (pred {predicted:.1}, actual {actual:.1})"
    );
}

#[test]
fn predictions_extend_to_co_runners_outside_training_set() {
    // Train with cg/sp/ep as co-runners, predict streamcluster co-location
    // (never seen as a co-runner; only its baseline features are used).
    let lab = Lab::new(presets::xeon_e5649(), standard(), 55).expect("valid preset");
    let samples = lab.collect(&small_plan(&lab)).expect("sweep");
    let nn = Predictor::train(ModelKind::NeuralNet, FeatureSet::F, &samples, 4).expect("train");

    let sc = Scenario::homogeneous("canneal", "streamcluster", 3, 0);
    let predicted = nn.predict(&lab.featurize(&sc).unwrap());
    let actual = lab.run_scenario(&sc).unwrap();
    let err = (predicted - actual).abs() / actual;
    assert!(
        err < 0.20,
        "unseen co-runner error {err:.3} (pred {predicted:.1}, actual {actual:.1})"
    );
}

#[test]
fn pca_ranks_baseline_time_first_on_real_sweep() {
    // baseExTime carries the dominant variance in the real data (times
    // range 150–700 s while ratios are ≤ O(1)) — PCA must notice.
    let lab = Lab::new(presets::xeon_e5649(), standard(), 31).expect("valid preset");
    let plan = TrainingPlan {
        counts: vec![1, 5],
        ..small_plan(&lab)
    };
    let samples = lab.collect(&plan).expect("sweep");
    let ranking = rank_features(&samples).unwrap();
    assert_eq!(ranking.len(), 8);
    assert!(ranking.iter().all(|(_, s)| s.is_finite()));
}
