//! Protocol independence: the paper's conclusions should not depend on its
//! choice of repeated random sub-sampling over k-fold cross-validation.

use coloc::machine::presets;
use coloc::ml::kfold::kfold;
use coloc::ml::validate::{validate, ValidationConfig};
use coloc::ml::{LinearRegression, Mlp, MlpConfig};
use coloc::model::{samples_to_dataset, FeatureSet, Lab, TrainingPlan};
use coloc::workloads::standard;

fn sweep() -> coloc::ml::Dataset {
    let lab = Lab::new(presets::xeon_e5649(), standard(), 2024).expect("valid preset");
    let plan = TrainingPlan {
        pstates: vec![0, 3],
        targets: vec![
            "cg".into(),
            "canneal".into(),
            "fluidanimate".into(),
            "ep".into(),
        ],
        co_runners: vec!["cg".into(), "sp".into(), "ep".into()],
        counts: vec![1, 3, 5],
    };
    let samples = lab.collect(&plan).expect("sweep");
    samples_to_dataset(&samples, FeatureSet::F).expect("dataset")
}

#[test]
fn kfold_and_subsampling_agree_for_linear_models() {
    let ds = sweep();
    let kf = kfold(&ds, 10, 5, |t, _| LinearRegression::fit(t)).unwrap();
    let rs = validate(
        &ds,
        &ValidationConfig {
            partitions: 10,
            seed: 5,
            ..Default::default()
        },
        |t, _| LinearRegression::fit(t),
    )
    .unwrap();
    assert!(
        (kf.test_mpe - rs.test_mpe).abs() < 1.5,
        "k-fold {:.2}% vs sub-sampling {:.2}%",
        kf.test_mpe,
        rs.test_mpe
    );
}

#[test]
fn protocols_agree_on_the_nn_vs_linear_ordering() {
    let ds = sweep();
    let lin_kf = kfold(&ds, 5, 1, |t, _| LinearRegression::fit(t)).unwrap();
    let nn_kf = kfold(&ds, 5, 1, |t, seed| {
        Mlp::fit(t, &MlpConfig::for_features(8, seed))
    })
    .unwrap();
    let cfg = ValidationConfig {
        partitions: 5,
        seed: 1,
        ..Default::default()
    };
    let lin_rs = validate(&ds, &cfg, |t, _| LinearRegression::fit(t)).unwrap();
    let nn_rs = validate(&ds, &cfg, |t, seed| {
        Mlp::fit(t, &MlpConfig::for_features(8, seed))
    })
    .unwrap();

    // The paper's headline ordering must hold under both protocols.
    assert!(
        nn_kf.test_mpe < lin_kf.test_mpe,
        "k-fold: NN {:.2}% !< linear {:.2}%",
        nn_kf.test_mpe,
        lin_kf.test_mpe
    );
    assert!(
        nn_rs.test_mpe < lin_rs.test_mpe,
        "sub-sampling: NN {:.2}% !< linear {:.2}%",
        nn_rs.test_mpe,
        lin_rs.test_mpe
    );
}

#[test]
fn partition_spread_is_tight() {
    // Paper §V-A: per-partition error varies by at most a quarter percent
    // — on the full 1320-run sweep. This miniature 72-run sweep withholds
    // only ~22 samples per partition, so the spread scales up roughly with
    // √(1320/72) ≈ 4.3×; demand the correspondingly loosened bound. (The
    // full-sweep spread is asserted in `repro`'s cached grid, where every
    // model's test_mpe_std is well under 0.25%.)
    let ds = sweep();
    let rs = validate(
        &ds,
        &ValidationConfig {
            partitions: 20,
            seed: 9,
            ..Default::default()
        },
        |t, _| LinearRegression::fit(t),
    )
    .unwrap();
    assert!(
        rs.test_mpe_std() < 2.5,
        "per-partition spread {:.3} is implausibly wide",
        rs.test_mpe_std()
    );
}
