//! # coloc — co-location aware application performance modeling
//!
//! Umbrella crate re-exporting the full `coloc` workspace: a reproduction of
//! *"A Methodology for Co-Location Aware Application Performance Modeling in
//! Multicore Computing"* (Dauwe et al., IPPS 2015).
//!
//! The workspace layers, bottom-up:
//!
//! * [`linalg`] — dense matrices, QR least squares, Jacobi eigensolver.
//! * [`ml`] — linear regression, MLP trained with scaled conjugate
//!   gradient, PCA, bootstrap validation, MPE/NRMSE metrics.
//! * [`cachesim`] — set-associative caches, reuse-distance analysis,
//!   miss-rate curves, shared-cache occupancy models.
//! * [`memsys`] — DRAM bandwidth/queueing contention model.
//! * [`machine`] — multicore processor simulator with DVFS P-states and an
//!   epoch-based co-execution engine (Xeon E5649 / E5-2697v2 presets).
//! * [`perfmon`] — PAPI-like portable performance-counter API + profiler.
//! * [`workloads`] — eleven synthetic PARSEC/NAS-class applications in four
//!   memory-intensity classes.
//! * [`model`] — the paper's contribution: features, feature sets A–F,
//!   training plans, data collection, and trained predictors.
//!
//! ## Quickstart
//!
//! ```
//! use coloc::model::{Lab, TrainingPlan, ModelKind, FeatureSet, Predictor, Scenario};
//! use coloc::machine::presets;
//! use coloc::workloads::standard;
//!
//! let lab = Lab::new(presets::xeon_e5649(), standard(), 42).expect("valid preset");
//! // A thinned sweep keeps the doctest quick; use `lab.paper_plan()` for
//! // the paper's full Table-V sweep.
//! let plan = TrainingPlan {
//!     pstates: vec![0],
//!     targets: vec!["canneal".into(), "cg".into(), "ep".into()],
//!     co_runners: vec!["cg".into(), "ep".into()],
//!     counts: vec![1, 3, 5],
//! };
//! let data = lab.collect(&plan).unwrap();
//! let predictor =
//!     Predictor::train(ModelKind::Linear, FeatureSet::C, &data, 7).unwrap();
//! let scenario = Scenario::homogeneous("canneal", "cg", 3, 0);
//! let predicted = predictor.predict(&lab.featurize(&scenario).unwrap());
//! assert!(predicted > 0.0);
//! ```

pub use coloc_cachesim as cachesim;
pub use coloc_linalg as linalg;
pub use coloc_machine as machine;
pub use coloc_memsys as memsys;
pub use coloc_ml as ml;
pub use coloc_model as model;
pub use coloc_perfmon as perfmon;
pub use coloc_workloads as workloads;
