//! Offline vendored stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace uses: range and
//! tuple strategies, `prop_map`, `prop::collection::vec`,
//! `prop::sample::select`, `prop::array::uniform8`, the `proptest!` macro
//! with `#![proptest_config(...)]`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Unlike upstream there is no shrinking: a failing case panics with the
//! case index and the deterministic per-test seed, which is enough to
//! reproduce it (cases are derived from the test name, not OS entropy).

pub mod test_runner {
    use std::fmt;

    /// Deterministic per-case RNG (xoshiro256++ seeded from the test name
    /// and case index via SplitMix64).
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// RNG for one `(test, case)` pair; stable across runs and platforms.
        pub fn for_case(test_name: &str, case: u32) -> TestRng {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            let mut seed = h ^ ((case as u64) << 32) ^ 0x5bf0_3635;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut seed);
            }
            if s.iter().all(|&x| x == 0) {
                s[0] = 1;
            }
            TestRng { s }
        }

        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// A failed property; carried back through the generated test's closure.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: impl fmt::Display) -> TestCaseError {
            TestCaseError(msg.to_string())
        }

        /// Upstream-compatible constructor name.
        pub fn reject(msg: impl fmt::Display) -> TestCaseError {
            TestCaseError(msg.to_string())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Runner configuration; only `cases` is meaningful here.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }

        /// Case count after applying the `PROPTEST_CASES` env override.
        pub fn resolved_cases(&self) -> u32 {
            match std::env::var("PROPTEST_CASES") {
                Ok(v) => v.parse().unwrap_or(self.cases),
                Err(_) => self.cases,
            }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Upstream strategies produce shrinkable value trees; here `generate`
    /// yields the value directly and failures simply report their case seed.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "empty range strategy {}..{}",
                        self.start,
                        self.end
                    );
                    let span = (self.end as i128 - self.start as i128) as u64;
                    let off = rng.below(span);
                    ((self.start as i128) + off as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "empty range strategy {}..{}",
                        self.start,
                        self.end
                    );
                    let v = self.start
                        + rng.unit_f64() as $t * (self.end - self.start);
                    // Rounding can land exactly on the excluded endpoint.
                    if v >= self.end { self.start } else { v }
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    impl Strategy for Range<char> {
        type Value = char;
        fn generate(&self, rng: &mut TestRng) -> char {
            let (lo, hi) = (self.start as u32, self.end as u32);
            assert!(lo < hi, "empty char range strategy");
            loop {
                if let Some(c) = char::from_u32(lo + rng.below((hi - lo) as u64) as u32) {
                    return c;
                }
            }
        }
    }

    impl Strategy for Range<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length bound for [`vec()`]; half-open `[lo, hi)`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span > 1 {
                    rng.below(span) as usize
                } else {
                    0
                };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy that picks uniformly from a fixed set of values.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }
}

pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `[S::Value; N]`, drawing each element independently.
    pub struct UniformArray<S, const N: usize> {
        elem: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.elem.generate(rng))
        }
    }

    macro_rules! uniform_fns {
        ($($name:ident => $n:literal),*) => {$(
            pub fn $name<S: Strategy>(elem: S) -> UniformArray<S, $n> {
                UniformArray { elem }
            }
        )*};
    }

    uniform_fns!(
        uniform2 => 2, uniform3 => 3, uniform4 => 4, uniform5 => 5,
        uniform6 => 6, uniform7 => 7, uniform8 => 8, uniform16 => 16,
        uniform32 => 32
    );
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of upstream's `prelude::prop` namespace module.
    pub mod prop {
        pub use crate::array;
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Define property tests. Mirrors the upstream grammar this workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_prop(x in 0u64..100, v in prop::collection::vec(0f64..1.0, 1..9)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let __cases = __config.resolved_cases();
            for __case in 0..__cases {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )*
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        __case,
                        __cases,
                        e
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = &$left;
        let __r = &$right;
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = &$left;
        let __r = &$right;
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case("bounds", 0);
        for _ in 0..2000 {
            let u = Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&u));
            let i = Strategy::generate(&(-5i64..5), &mut rng);
            assert!((-5..5).contains(&i));
            let f = Strategy::generate(&(-1.5f64..2.5), &mut rng);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = prop::collection::vec((0u64..100, -1.0f64..1.0), 1..20);
        let mut a = crate::test_runner::TestRng::for_case("det", 7);
        let mut b = crate::test_runner::TestRng::for_case("det", 7);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_wires_strategies(
            x in 1usize..9,
            xs in prop::collection::vec(0.0f64..1.0, 2..6),
            name in prop::sample::select(vec!["a".to_string(), "b".to_string()]),
            arr in prop::array::uniform8(-1e3f64..1e3),
        ) {
            prop_assert!((1..9).contains(&x));
            prop_assert!(xs.len() >= 2 && xs.len() < 6, "len {}", xs.len());
            prop_assert!(name == "a" || name == "b");
            prop_assert_eq!(arr.len(), 8);
        }
    }

    proptest! {
        #[test]
        fn default_config_arm_compiles(b in 0u8..255) {
            prop_assert_ne!(b, 255);
        }
    }
}
