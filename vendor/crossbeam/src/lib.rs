//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the scoped-thread API this workspace uses is provided:
//! `crossbeam::thread::scope(|s| { s.spawn(|_| ...); ... })`. Since Rust
//! 1.63 the standard library has structured scoped threads, so this is a
//! thin signature-compatibility bridge onto [`std::thread::scope`].
//!
//! One semantic difference from upstream: if a spawned thread panics and
//! its handle is never joined, `std::thread::scope` re-raises the panic at
//! the end of the scope instead of surfacing it through the returned
//! `Result`. Callers here always either join handles or `.expect()` the
//! scope result, so a worker panic still fails loudly either way.

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// A fork-join scope handle; mirrors `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    // A plain reborrowable reference wrapper.
    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a spawned scoped thread.
    pub type ScopedJoinHandle<'scope, T> = std::thread::ScopedJoinHandle<'scope, T>;

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. As in crossbeam, the closure
        /// receives the scope itself so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let reborrow = *self;
            self.inner.spawn(move || f(&reborrow))
        }
    }

    /// Create a fork-join scope: all threads spawned inside are joined
    /// before `scope` returns. Returns `Ok(result)` on clean completion,
    /// matching the upstream signature (`.unwrap()`/`.expect()` at call
    /// sites keep working).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let hits = AtomicUsize::new(0);
        let out = crate::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
            41 + 1
        })
        .unwrap();
        assert_eq!(out, 42);
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let hits = AtomicUsize::new(0);
        crate::thread::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn join_returns_thread_value() {
        let vals = crate::thread::scope(|s| {
            let handles: Vec<_> = (0..4).map(|i| s.spawn(move |_| i * i)).collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        })
        .unwrap();
        assert_eq!(vals, vec![0, 1, 4, 9]);
    }
}
