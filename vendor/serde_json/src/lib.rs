//! Offline stand-in for `serde_json`.
//!
//! Serializes the vendored `serde` [`Value`] tree to JSON text and parses
//! it back with a hand-written recursive-descent parser. Behaviour matches
//! upstream where the workspace depends on it:
//!
//! * floats are printed with Rust's shortest-round-trip formatting (the
//!   `float_roundtrip` guarantee: reparse always yields the same bits);
//! * non-finite floats serialize as `null`;
//! * pretty printing uses two-space indentation;
//! * strings get full escape handling including `\uXXXX`.

use serde::{de::DeserializeOwned, Map, Serialize, Value};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error(e.0)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    // Rust's `{}` is the shortest representation that round-trips; append
    // `.0` for integral values so the token visibly stays a float, as
    // upstream serde_json does.
    let s = format!("{f}");
    out.push_str(&s);
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_f64(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                write_value(out, item, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push('}');
        }
    }
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None);
    Ok(out)
}

/// Serialize to a pretty JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(0));
    Ok(out)
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Serialize to pretty JSON bytes.
pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string_pretty(value).map(String::into_bytes)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(bytes: &'a [u8]) -> Parser<'a> {
        Parser { bytes, pos: 0 }
    }

    fn err(&self, msg: impl fmt::Display) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.err(format!("unexpected byte `{}`", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    let hex2 = self
                                        .bytes
                                        .get(self.pos + 2..self.pos + 6)
                                        .ok_or_else(|| self.err("truncated surrogate"))?;
                                    let low = u32::from_str_radix(
                                        std::str::from_utf8(hex2)
                                            .map_err(|_| self.err("bad surrogate"))?,
                                        16,
                                    )
                                    .map_err(|_| self.err("bad surrogate"))?;
                                    self.pos += 6;
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?
                            };
                            out.push(c);
                        }
                        other => return Err(self.err(format!("bad escape `\\{}`", other as char))),
                    }
                }
                _ => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut m = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(m));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            m.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parse a [`Value`] from JSON bytes.
pub fn value_from_slice(bytes: &[u8]) -> Result<Value> {
    let mut p = Parser::new(bytes);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Deserialize a typed value from JSON bytes.
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let v = value_from_slice(bytes)?;
    T::from_value(&v).map_err(Error::from)
}

/// Deserialize a typed value from a JSON string.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    from_slice(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::UInt(u64::MAX),
            Value::Float(0.1),
            Value::Str("hé\"\\\n".into()),
        ] {
            let s = to_string(&v).unwrap();
            assert_eq!(value_from_slice(s.as_bytes()).unwrap(), v, "{s}");
        }
    }

    #[test]
    fn float_bits_survive_round_trip() {
        for f in [0.1, 1.0 / 3.0, 1e-308, 2.5e17, f64::MIN_POSITIVE, -0.0] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{s}");
        }
    }

    #[test]
    fn nested_pretty_round_trips() {
        let mut inner = Map::new();
        inner.insert("xs", Value::Array(vec![Value::Int(1), Value::Float(2.5)]));
        inner.insert("name", Value::Str("coloc".into()));
        let v = Value::Object(inner);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  "));
        assert_eq!(value_from_slice(pretty.as_bytes()).unwrap(), v);
    }

    #[test]
    fn parses_unicode_escapes() {
        let v: String = from_str(r#""aé😀b""#).unwrap();
        assert_eq!(v, "aé😀b");
    }

    #[test]
    fn integral_floats_get_a_dot() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(to_string(&3i64).unwrap(), "3");
    }

    #[test]
    fn rejects_garbage() {
        assert!(value_from_slice(b"{unquoted: 1}").is_err());
        assert!(value_from_slice(b"[1, 2,,]").is_err());
        assert!(value_from_slice(b"12 34").is_err());
    }

    #[test]
    fn typed_round_trip() {
        let xs = vec![(1u64, 0.5f64), (2, 0.25)];
        let s = to_string_pretty(&xs).unwrap();
        let back: Vec<(u64, f64)> = from_str(&s).unwrap();
        assert_eq!(back, xs);
    }
}
