//! Offline vendored stand-in for `criterion`.
//!
//! Keeps the `criterion_group!`/`criterion_main!` bench-target API and the
//! group configuration surface (`sample_size`, `warm_up_time`,
//! `measurement_time`) but reports plain text to stdout: per benchmark, the
//! mean, min, and max wall time per iteration. No statistics machinery, no
//! HTML reports, no comparison against saved baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The stand-in times each routine
/// call individually, so the variants only pick the batch count.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

pub mod measurement {
    /// Wall-clock measurement marker; the only measurement this stand-in has.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct WallTime;
}

/// Per-group (or global) measurement budget.
#[derive(Clone, Copy, Debug)]
struct Budget {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Budget {
    fn default() -> Budget {
        Budget {
            sample_size: 100,
            warm_up: Duration::from_secs(3),
            measurement: Duration::from_secs(5),
        }
    }
}

/// Passed to the closure of `bench_function`; drives the timing loop.
pub struct Bencher<'a> {
    budget: Budget,
    samples: &'a mut Vec<Duration>,
}

impl Bencher<'_> {
    /// Time `routine` repeatedly; one sample per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run without recording until the budget elapses.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.budget.warm_up {
            black_box(routine());
        }
        let measure_start = Instant::now();
        for _ in 0..self.budget.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            if measure_start.elapsed() > self.budget.measurement {
                break;
            }
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.budget.warm_up {
            let input = setup();
            black_box(routine(input));
        }
        let measure_start = Instant::now();
        for _ in 0..self.budget.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
            if measure_start.elapsed() > self.budget.measurement {
                break;
            }
        }
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    println!(
        "{id:<48} mean {mean:>12?}  min {min:>12?}  max {max:>12?}  ({} samples)",
        samples.len()
    );
}

/// Top-level harness handle, one per bench binary.
#[derive(Default)]
pub struct Criterion {
    budget: Budget,
}

impl Criterion {
    /// Upstream reads CLI filters/baseline flags here; the stand-in accepts
    /// and ignores them so `cargo bench -- <anything>` still runs.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.budget.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.budget.warm_up = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.budget.measurement = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let mut samples = Vec::new();
        f(&mut Bencher {
            budget: self.budget,
            samples: &mut samples,
        });
        report(&id, &samples);
        self
    }

    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.into(),
            budget: self.budget,
            _criterion: self,
            _measurement: std::marker::PhantomData,
        }
    }
}

/// A named group of benchmarks sharing a measurement budget.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    name: String,
    budget: Budget,
    _criterion: &'a mut Criterion,
    _measurement: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.budget.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.budget.warm_up = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.budget.measurement = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, id.into());
        let mut samples = Vec::new();
        f(&mut Bencher {
            budget: self.budget,
            samples: &mut samples,
        });
        report(&full, &samples);
        self
    }

    /// Upstream flushes the group's report here; nothing buffered to flush.
    pub fn finish(self) {}
}

/// Build the registration function `criterion_group!` expects of each bench.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $(
                $target(&mut criterion);
            )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config.configure_from_args();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Build `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) -> BenchmarkGroup<'_, measurement::WallTime> {
        let mut g = c.benchmark_group("t");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(20));
        g
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut c = Criterion::default();
        let mut g = quick(&mut c);
        let mut calls = 0u64;
        g.bench_function("iter", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
        g.finish();
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut c = Criterion::default();
        let mut g = quick(&mut c);
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64, 2, 3],
                |v| v.iter().sum::<u64>(),
                BatchSize::LargeInput,
            )
        });
        g.finish();
    }

    #[test]
    fn top_level_bench_function() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(10));
        c.bench_function(format!("fmt_{}", 1), |b| b.iter(|| black_box(2 + 2)));
    }
}
