//! Offline stand-in for `serde`.
//!
//! The workspace's build environment has no crates.io access, so this crate
//! implements the slice of serde the repo actually uses: derived
//! `Serialize`/`Deserialize` on plain structs and enums, persisted through
//! JSON by the sibling `serde_json` stand-in.
//!
//! Instead of upstream's visitor-based zero-copy architecture, both traits
//! go through an owned [`Value`] tree — the JSON data model. That is a
//! deliberate simplification: every serialized artifact here is a small
//! model/report JSON file, where an intermediate tree costs microseconds.
//! The derive macros (re-exported from `serde_derive`) generate the same
//! externally-tagged representation upstream serde would, so JSON written
//! by real serde round-trips through these types and vice versa:
//!
//! * structs → JSON objects keyed by field name
//! * newtype structs → the inner value, transparently
//! * unit enum variants → `"VariantName"`
//! * data-carrying variants → `{"VariantName": <payload>}`

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// An ordered JSON object. Insertion order is preserved so serialized
/// structs keep their declared field order; lookups are linear, which is
/// fine at the sizes persisted here (model files, report rows).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Empty object.
    pub fn new() -> Map {
        Map::default()
    }

    /// Append or replace a key.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// The JSON data model.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer written without a decimal point, within `i64`.
    Int(i64),
    /// Integer outside `i64` but within `u64`.
    UInt(u64),
    /// Any other number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object.
    Object(Map),
}

impl Value {
    /// Coerce any numeric variant to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            Value::Null => Some(f64::NAN), // serde_json writes non-finite floats as null
            _ => None,
        }
    }

    /// A short human label for error messages.
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Clone, Debug, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// Build an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> DeError {
        DeError(m.to_string())
    }

    fn expected(what: &str, got: &Value) -> DeError {
        DeError(format!("expected {what}, found {}", got.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialize into the [`Value`] tree.
pub trait Serialize {
    /// The value-tree representation of `self`.
    fn to_value(&self) -> Value;
}

/// Deserialize from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Compatibility module mirroring `serde::de`.
pub mod de {
    /// Owned deserialization — with an owned value tree every
    /// [`Deserialize`](super::Deserialize) is already owned.
    pub trait DeserializeOwned: super::Deserialize {}
    impl<T: super::Deserialize> DeserializeOwned for T {}

    pub use super::DeError as Error;
}

/// Compatibility module mirroring `serde::ser`.
pub mod ser {
    pub use super::Serialize;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as i128;
                if let Ok(i) = i64::try_from(wide) {
                    Value::Int(i)
                } else {
                    Value::UInt(wide as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let wide: i128 = match v {
                    Value::Int(i) => *i as i128,
                    Value::UInt(u) => *u as i128,
                    // Integral floats appear when a writer formatted 3 as 3.0.
                    Value::Float(f) if f.fract() == 0.0 && f.abs() < 2f64.powi(63) => {
                        *f as i128
                    }
                    other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(wide).map_err(|_| {
                    DeError(format!("integer {wide} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Float(*self)
        } else {
            // Matches serde_json: NaN and infinities have no JSON encoding.
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<char, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-character string", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Box<T>, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<[T; N], DeError> {
        let items = match v {
            Value::Array(items) => items,
            other => return Err(DeError::expected("array", other)),
        };
        if items.len() != N {
            return Err(DeError(format!(
                "expected array of length {N}, found {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| DeError("array length changed during conversion".into()))
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<($($name,)+), DeError> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = match v {
                    Value::Array(items) if items.len() == LEN => items,
                    Value::Array(items) => {
                        return Err(DeError(format!(
                            "expected {LEN}-tuple, found array of {}", items.len()
                        )))
                    }
                    other => return Err(DeError::expected("array (tuple)", other)),
                };
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
tuple_impls! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
}

/// Map keys must serialize to strings (serde_json's rule). String keys and
/// unit enum variants both qualify.
fn key_to_string<K: Serialize>(key: &K) -> Result<String, DeError> {
    match key.to_value() {
        Value::Str(s) => Ok(s),
        Value::Int(i) => Ok(i.to_string()),
        Value::UInt(u) => Ok(u.to_string()),
        other => Err(DeError(format!(
            "map key must be a string, got {}",
            other.kind()
        ))),
    }
}

fn key_from_string<K: Deserialize>(key: &str) -> Result<K, DeError> {
    K::from_value(&Value::Str(key.to_string())).or_else(|_| {
        key.parse::<i64>()
            .map_err(|_| DeError(format!("cannot parse map key `{key}`")))
            .and_then(|i| K::from_value(&Value::Int(i)))
    })
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            let key = key_to_string(k).expect("unsupported BTreeMap key type");
            m.insert(key, v.to_value());
        }
        Value::Object(m)
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<BTreeMap<K, V>, DeError> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort keys for a canonical encoding, matching BTreeMap output.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                (
                    key_to_string(k).expect("unsupported HashMap key type"),
                    v.to_value(),
                )
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut m = Map::new();
        for (k, v) in entries {
            m.insert(k, v);
        }
        Value::Object(m)
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<HashMap<K, V>, DeError> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(u64::from_value(&7u64.to_value()).unwrap(), 7);
        assert_eq!(i32::from_value(&(-3i32).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn nan_becomes_null_and_back() {
        assert_eq!(f64::NAN.to_value(), Value::Null);
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let t = (4u64, 2.5f64);
        assert_eq!(<(u64, f64)>::from_value(&t.to_value()).unwrap(), t);
        let a = [1.0f64, 2.0, 3.0];
        assert_eq!(<[f64; 3]>::from_value(&a.to_value()).unwrap(), a);
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&o.to_value()).unwrap(), None);
    }

    #[test]
    fn btreemap_string_keys() {
        let mut m = BTreeMap::new();
        m.insert("b".to_string(), 2u32);
        m.insert("a".to_string(), 1u32);
        let rt = BTreeMap::<String, u32>::from_value(&m.to_value()).unwrap();
        assert_eq!(rt, m);
    }

    #[test]
    fn integral_float_parses_as_int() {
        assert_eq!(u32::from_value(&Value::Float(3.0)).unwrap(), 3);
        assert!(u32::from_value(&Value::Float(3.5)).is_err());
    }

    #[test]
    fn map_preserves_insertion_order() {
        let mut m = Map::new();
        m.insert("z", Value::Int(1));
        m.insert("a", Value::Int(2));
        let keys: Vec<&str> = m.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["z", "a"]);
    }
}
