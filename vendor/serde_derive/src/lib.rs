//! Offline stand-in for `serde_derive`.
//!
//! Generates `impl serde::Serialize` / `impl serde::Deserialize` for the
//! shapes this workspace actually derives on: non-generic structs with
//! named fields, tuple structs, unit structs, and enums whose variants are
//! unit, tuple, or struct-like. Parsing is done directly over
//! `proc_macro::TokenStream` (no `syn`/`quote` available offline); code
//! generation builds a source string and re-parses it.
//!
//! The representation mirrors upstream serde's externally-tagged default,
//! so JSON produced by real serde round-trips through these impls:
//! structs → objects, newtype structs → transparent, unit variants →
//! `"Name"`, data variants → `{"Name": payload}`.
//!
//! Unsupported inputs (generic types, `#[serde(...)]` attributes) panic at
//! expansion time with a clear message rather than miscompiling.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What a derive input looks like after parsing.
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Input {
    name: String,
    shape: Shape,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let mut toks = input.into_iter().peekable();

    // Skip outer attributes and visibility.
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kw = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive (vendored): generic type `{name}` is not supported");
        }
    }

    let shape = match kw.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde_derive: unexpected struct body {other:?}"),
        },
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}`"),
    };

    Input { name, shape }
}

/// Split the token stream of a braced field list into field names. Commas
/// inside `<...>` generic arguments and nested groups do not split.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tree) = toks.next() else { break };
        let TokenTree::Ident(field) = tree else {
            panic!("serde_derive: expected field name, got {tree:?}");
        };
        fields.push(field.to_string());
        // Expect ':', then consume the type up to a top-level comma.
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field, got {other:?}"),
        }
        let mut angle_depth = 0i32;
        for tree in toks.by_ref() {
            match &tree {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Count comma-separated fields at the top level of a tuple field list.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_tokens = false;
    let mut angle_depth = 0i32;
    for tree in stream {
        match &tree {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    if saw_tokens {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // Skip attributes before the variant.
        while let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == '#' {
                toks.next();
                toks.next();
            } else {
                break;
            }
        }
        let Some(tree) = toks.next() else { break };
        let TokenTree::Ident(vname) = tree else {
            panic!("serde_derive: expected variant name, got {tree:?}");
        };
        let kind = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_top_level_fields(g.stream());
                toks.next();
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                toks.next();
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant {
            name: vname.to_string(),
            kind,
        });
        // Consume an optional discriminant and the separating comma.
        let mut angle_depth = 0i32;
        while let Some(tree) = toks.peek() {
            match tree {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    toks.next();
                    break;
                }
                _ => {}
            }
            toks.next();
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let mut s = String::from("let mut m = serde::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "m.insert(\"{f}\", serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            s.push_str("serde::Value::Object(m)");
            s
        }
        Shape::TupleStruct(1) => {
            // Newtype structs are transparent, as in upstream serde.
            "serde::Serialize::to_value(&self.0)".to_string()
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let payload = if *n == 1 {
                            "serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})"))
                                .collect();
                            format!("serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => {{\n\
                             let mut m = serde::Map::new();\n\
                             m.insert(\"{vn}\", {payload});\n\
                             serde::Value::Object(m)\n}}\n",
                            binds.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let binds = fields.join(", ");
                        let mut inner = String::from("let mut inner = serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "inner.insert(\"{f}\", serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n{inner}\
                             let mut m = serde::Map::new();\n\
                             m.insert(\"{vn}\", serde::Value::Object(inner));\n\
                             serde::Value::Object(m)\n}}\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
         fn to_value(&self) -> serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let mut s = format!(
                "let __obj = match __value {{\n\
                 serde::Value::Object(m) => m,\n\
                 __other => return Err(serde::DeError::msg(format!(\n\
                 \"expected object for struct {name}, found {{__other:?}}\"))),\n}};\n"
            );
            for f in fields {
                s.push_str(&format!(
                    "let {f} = serde::Deserialize::from_value(\n\
                     __obj.get(\"{f}\").unwrap_or(&serde::Value::Null))\n\
                     .map_err(|e| serde::DeError::msg(format!(\"{name}.{f}: {{e}}\")))?;\n"
                ));
            }
            s.push_str(&format!("Ok({name} {{ {} }})", fields.join(", ")));
            s
        }
        Shape::TupleStruct(1) => format!(
            "Ok({name}(serde::Deserialize::from_value(__value)\n\
             .map_err(|e| serde::DeError::msg(format!(\"{name}: {{e}}\")))?))"
        ),
        Shape::TupleStruct(n) => {
            let mut s = format!(
                "let __items = match __value {{\n\
                 serde::Value::Array(__items) if __items.len() == {n} => __items,\n\
                 __other => return Err(serde::DeError::msg(format!(\n\
                 \"expected {n}-element array for {name}, found {{__other:?}}\"))),\n}};\n"
            );
            let fields: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            s.push_str(&format!("Ok({name}({}))", fields.join(", ")));
            s
        }
        Shape::UnitStruct => format!("let _ = __value; Ok({name})"),
        Shape::Enum(variants) => {
            // Unit variants arrive as strings; data variants as
            // single-entry objects.
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => return Ok({name}::{vn}),\n"));
                    }
                    VariantKind::Tuple(1) => {
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => return Ok({name}::{vn}(\n\
                             serde::Deserialize::from_value(__payload)\n\
                             .map_err(|e| serde::DeError::msg(format!(\"{name}::{vn}: {{e}}\")))?)),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let fields: Vec<String> = (0..*n)
                            .map(|i| format!("serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __items = match __payload {{\n\
                             serde::Value::Array(__items) if __items.len() == {n} => __items,\n\
                             __other => return Err(serde::DeError::msg(format!(\n\
                             \"{name}::{vn}: expected {n}-element array, found {{__other:?}}\"))),\n}};\n\
                             return Ok({name}::{vn}({}));\n}}\n",
                            fields.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let mut inner = format!(
                            "let __obj = match __payload {{\n\
                             serde::Value::Object(m) => m,\n\
                             __other => return Err(serde::DeError::msg(format!(\n\
                             \"{name}::{vn}: expected object, found {{__other:?}}\"))),\n}};\n"
                        );
                        for f in fields {
                            inner.push_str(&format!(
                                "let {f} = serde::Deserialize::from_value(\n\
                                 __obj.get(\"{f}\").unwrap_or(&serde::Value::Null))\n\
                                 .map_err(|e| serde::DeError::msg(format!(\"{name}::{vn}.{f}: {{e}}\")))?;\n"
                            ));
                        }
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n{inner}return Ok({name}::{vn} {{ {} }});\n}}\n",
                            fields.join(", ")
                        ));
                    }
                }
            }
            format!(
                "if let serde::Value::Str(__s) = __value {{\n\
                 match __s.as_str() {{\n{unit_arms}\
                 __other => return Err(serde::DeError::msg(format!(\n\
                 \"unknown unit variant `{{__other}}` for enum {name}\"))),\n}}\n}}\n\
                 if let serde::Value::Object(__obj2) = __value {{\n\
                 if __obj2.len() == 1 {{\n\
                 let (__tag, __payload) = __obj2.iter().next().expect(\"len checked\");\n\
                 match __tag.as_str() {{\n{tagged_arms}\
                 __other => return Err(serde::DeError::msg(format!(\n\
                 \"unknown variant `{{__other}}` for enum {name}\"))),\n}}\n}}\n}}\n\
                 Err(serde::DeError::msg(format!(\n\
                 \"expected variant of enum {name}, found {{__value:?}}\")))"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Deserialize for {name} {{\n\
         fn from_value(__value: &serde::Value) -> ::std::result::Result<{name}, serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}
