//! Offline stand-in for the `rand` crate (0.8-era API subset).
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of `rand` features the simulator and ML layers use are
//! implemented here directly: a seedable deterministic generator
//! ([`rngs::StdRng`], xoshiro256++ seeded through SplitMix64), the [`Rng`]
//! extension methods `gen`/`gen_range`/`gen_bool`/`fill`, and
//! [`seq::SliceRandom`] shuffling.
//!
//! The stream is high-quality and fully deterministic per seed, but it is
//! **not** bit-compatible with upstream `rand`'s `StdRng` (ChaCha12); the
//! workspace only relies on determinism, never on specific draws.

/// Core generator interface: a source of uniform random 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG (the role of rand's
/// `Standard` distribution).
pub trait UniformSample {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl UniformSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl UniformSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl UniformSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl UniformSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn uniformly from (rand's `SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 sample range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty f32 sample range");
        let u = f32::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer sample range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive sample range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience extension methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value uniformly (rand's `gen::<T>()`).
    fn gen<T: UniformSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    /// Fill a byte slice.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore> Rng for R {}

/// Generators that can be constructed from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64. Passes BigCrush-class statistical batteries
    /// upstream; here it only needs to be fast, well-mixed, and stable.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = state;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the small generator is the same xoshiro core here.
    pub type SmallRng = StdRng;
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

/// Commonly imported names.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&x));
            let n = r.gen_range(3usize..9);
            assert!((3..9).contains(&n));
            let m = r.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&m));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn mean_is_near_half() {
        let mut r = StdRng::seed_from_u64(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }
}
